package annotate

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dk"
	"repro/internal/graph"
)

func connectedRandom(rng *rand.Rand, n, extra int) *graph.CSR {
	g := graph.NewCSR(n)
	for i := 1; i < n; i++ {
		if err := g.AddEdge(i, rng.Intn(i)); err != nil {
			panic(err)
		}
	}
	if cap := n*(n-1)/2 - g.M(); extra > cap {
		extra = cap
	}
	for added := 0; added < extra; {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		if err := g.AddEdge(u, v); err != nil {
			panic(err)
		}
		added++
	}
	return g
}

func TestEdgeLabelsCanonical(t *testing.T) {
	el := NewEdgeLabels()
	el.Set(3, 1, PeerPeer)
	if el.Get(1, 3) != PeerPeer {
		t.Error("label not canonical across orientation")
	}
	if el.Len() != 1 {
		t.Errorf("Len = %d", el.Len())
	}
	el.Delete(1, 3)
	if el.Len() != 0 {
		t.Error("delete failed")
	}
	if el.Get(1, 3) != 0 {
		t.Error("deleted label nonzero")
	}
}

func TestInferASRelationships(t *testing.T) {
	// Star: hub degree 5 vs leaves degree 1 → all customer-provider.
	g := graph.NewCSR(6)
	for i := 1; i <= 5; i++ {
		if err := g.AddEdge(0, i); err != nil {
			t.Fatal(err)
		}
	}
	el := InferASRelationships(g, 2)
	for i := 1; i <= 5; i++ {
		if el.Get(0, i) != CustomerProvider {
			t.Errorf("edge (0,%d) not customer-provider", i)
		}
	}
	// Triangle: equal degrees → all peer-peer.
	tri := graph.NewCSR(3)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {0, 2}} {
		if err := tri.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	elt := InferASRelationships(tri, 2)
	if elt.Get(0, 1) != PeerPeer {
		t.Error("triangle edge not peer-peer")
	}
}

func TestExtractAndMarginalize(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := connectedRandom(rng, 40, 60)
	el := InferASRelationships(g, 1.5)
	lj := Extract(g, el)
	if lj.M != g.M() {
		t.Fatalf("labeled JDD M = %d, want %d", lj.M, g.M())
	}
	// Marginalizing labels must recover the plain JDD exactly.
	p, err := dk.Extract(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d := dk.D2(lj.JDD(), p.Joint); d != 0 {
		t.Errorf("marginalized JDD differs from plain JDD: D2 = %v", d)
	}
}

func TestD2Labeled(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := connectedRandom(rng, 30, 40)
	el := InferASRelationships(g, 1.5)
	lj := Extract(g, el)
	if d := D2(lj, lj); d != 0 {
		t.Errorf("self distance = %v", d)
	}
	// Flip one label: distance becomes positive.
	e := g.EdgeAt(0)
	el2 := InferASRelationships(g, 1.5)
	if el2.Get(e.U, e.V) == CustomerProvider {
		el2.Set(e.U, e.V, PeerPeer)
	} else {
		el2.Set(e.U, e.V, CustomerProvider)
	}
	lj2 := Extract(g, el2)
	if d := D2(lj, lj2); d <= 0 {
		t.Errorf("distance after label flip = %v, want > 0", d)
	}
}

func TestRandomizePreservesLabeledJDDProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := connectedRandom(rng, 20+rng.Intn(40), 30+rng.Intn(60))
		el := InferASRelationships(g, 1.0+rng.Float64()*2)
		before := Extract(g, el)
		out, outLabels, err := Randomize(g, el, RandomizeOptions{Rng: rng, SwapFactor: 3})
		if err != nil {
			return false
		}
		after := Extract(out, outLabels)
		if D2(before, after) != 0 {
			return false
		}
		// Structural invariants.
		return out.N() == g.N() && out.M() == g.M() && outLabels.Len() == out.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestRandomizeActuallyRewires(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := connectedRandom(rng, 80, 200)
	el := InferASRelationships(g, 1.5)
	out, _, err := Randomize(g, el, RandomizeOptions{Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	if out.Equal(g) {
		t.Error("labeled randomize changed nothing")
	}
	// Input untouched.
	if g.M() != 200+79 {
		t.Errorf("input mutated: M = %d", g.M())
	}
}

func TestRandomizeValidation(t *testing.T) {
	g := graph.NewCSR(3)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	el := NewEdgeLabels()
	if _, _, err := Randomize(g, el, RandomizeOptions{}); err == nil {
		t.Error("missing Rng accepted")
	}
	if _, _, err := Randomize(g, el, RandomizeOptions{Rng: rand.New(rand.NewSource(1))}); err == nil {
		t.Error("single-edge graph accepted")
	}
}
