// Package annotate implements the paper's Section 6 extension: dK-series
// analysis of graphs whose links carry annotations (e.g. AS business
// relationships — customer-provider vs. peering — or router link
// bandwidth classes). The labeled 2K-distribution counts edges per
// (degree, degree, label) class, and label-preserving rewiring randomizes
// a graph while holding that labeled JDD fixed, so synthetic topologies
// retain both their degree correlations and their annotation structure.
package annotate

import (
	"fmt"
	"math/rand"

	"repro/internal/dk"
	"repro/internal/graph"
)

// Label is a small integer edge annotation (e.g. 0 = customer-provider,
// 1 = peer-peer).
type Label int8

// Common AS-relationship labels.
const (
	CustomerProvider Label = 0
	PeerPeer         Label = 1
)

// EdgeLabels stores one label per canonical edge.
type EdgeLabels struct {
	labels map[graph.Edge]Label
}

// NewEdgeLabels returns an empty label set.
func NewEdgeLabels() *EdgeLabels {
	return &EdgeLabels{labels: make(map[graph.Edge]Label)}
}

// Set labels edge (u,v).
func (el *EdgeLabels) Set(u, v int, l Label) {
	el.labels[graph.Edge{U: u, V: v}.Canon()] = l
}

// Get returns the label of (u,v); unlabeled edges return 0.
func (el *EdgeLabels) Get(u, v int) Label {
	return el.labels[graph.Edge{U: u, V: v}.Canon()]
}

// Delete removes the label of (u,v).
func (el *EdgeLabels) Delete(u, v int) {
	delete(el.labels, graph.Edge{U: u, V: v}.Canon())
}

// Len returns the number of labeled edges.
func (el *EdgeLabels) Len() int { return len(el.labels) }

// InferASRelationships labels every edge of g by the degree ratio
// heuristic used in AS-relationship inference: an edge whose endpoint
// degrees differ by more than ratio is customer-provider (the smaller
// degree is the customer), otherwise peer-peer.
func InferASRelationships(g *graph.CSR, ratio float64) *EdgeLabels {
	el := NewEdgeLabels()
	for _, e := range g.Edges() {
		du, dv := float64(g.Degree(e.U)), float64(g.Degree(e.V))
		hi, lo := du, dv
		if hi < lo {
			hi, lo = lo, hi
		}
		if hi > ratio*lo {
			el.Set(e.U, e.V, CustomerProvider)
		} else {
			el.Set(e.U, e.V, PeerPeer)
		}
	}
	return el
}

// Class is a labeled joint-degree class: an edge between nodes of degrees
// K1 <= K2 carrying label L.
type Class struct {
	K1, K2 int
	L      Label
}

// NewClass canonicalizes the degree pair.
func NewClass(k1, k2 int, l Label) Class {
	if k1 > k2 {
		k1, k2 = k2, k1
	}
	return Class{k1, k2, l}
}

// LabeledJDD is the labeled 2K-distribution: edge counts per Class.
type LabeledJDD struct {
	M     int
	Count map[Class]int
}

// Extract computes the labeled JDD of g under the given labels.
func Extract(g *graph.CSR, el *EdgeLabels) *LabeledJDD {
	out := &LabeledJDD{Count: make(map[Class]int)}
	for _, e := range g.Edges() {
		c := NewClass(g.Degree(e.U), g.Degree(e.V), el.Get(e.U, e.V))
		out.Count[c]++
		out.M++
	}
	return out
}

// JDD marginalizes the labels away, recovering the plain 2K-distribution
// (the inclusion property of the annotated series).
func (lj *LabeledJDD) JDD() *dk.JDD {
	out := dk.NewJDD()
	for c, m := range lj.Count {
		out.Add(c.K1, c.K2, m)
	}
	return out
}

// D2 is the labeled JDD distance: the sum of squared count differences
// over labeled classes.
func D2(a, b *LabeledJDD) float64 {
	var sum float64
	for c, ma := range a.Count {
		d := float64(ma - b.Count[c])
		sum += d * d
	}
	for c, mb := range b.Count {
		if _, seen := a.Count[c]; !seen {
			sum += float64(mb) * float64(mb)
		}
	}
	return sum
}

// RandomizeOptions configures labeled rewiring.
type RandomizeOptions struct {
	Rng *rand.Rand
	// SwapFactor scales the accepted-swap target (default 10), as in the
	// unlabeled Randomize.
	SwapFactor int
	// AttemptFactor scales the proposal budget (default 10·SwapFactor).
	AttemptFactor int
}

// Randomize performs labeled-2K-preserving randomizing rewiring on a copy
// of g: double-edge swaps restricted to edge pairs with equal labels and
// matching endpoint degrees, so both the JDD and the per-label class
// counts are exactly preserved. It returns the rewired graph and its
// updated labels.
func Randomize(g *graph.CSR, el *EdgeLabels, opt RandomizeOptions) (*graph.CSR, *EdgeLabels, error) {
	if opt.Rng == nil {
		return nil, nil, fmt.Errorf("annotate: Randomize requires Rng")
	}
	if g.M() < 2 {
		return nil, nil, fmt.Errorf("annotate: graph has %d edges; need at least 2", g.M())
	}
	rng := opt.Rng
	out := g.Clone()
	labels := NewEdgeLabels()
	for _, e := range g.Edges() {
		labels.Set(e.U, e.V, el.Get(e.U, e.V))
	}
	deg := out.DegreeSequence()

	swapFactor := opt.SwapFactor
	if swapFactor <= 0 {
		swapFactor = 10
	}
	attemptFactor := opt.AttemptFactor
	if attemptFactor <= 0 {
		attemptFactor = 10 * swapFactor
	}
	want := swapFactor * out.M()
	budget := attemptFactor * out.M()
	accepted := 0
	for attempt := 0; attempt < budget && accepted < want; attempt++ {
		e1 := out.EdgeAt(rng.Intn(out.M()))
		e2 := out.EdgeAt(rng.Intn(out.M()))
		u, v := e1.U, e1.V
		x, y := e2.U, e2.V
		if rng.Intn(2) == 0 {
			u, v = v, u
		}
		if rng.Intn(2) == 0 {
			x, y = y, x
		}
		if u == x || u == y || v == x || v == y {
			continue
		}
		if out.HasEdge(u, y) || out.HasEdge(x, v) {
			continue
		}
		// Same label and a JDD-preserving degree match.
		l1 := labels.Get(u, v)
		if l1 != labels.Get(x, y) {
			continue
		}
		if deg[v] != deg[y] && deg[u] != deg[x] {
			continue
		}
		out.RemoveEdge(u, v)
		out.RemoveEdge(x, y)
		if err := out.AddEdge(u, y); err != nil {
			panic("annotate: " + err.Error())
		}
		if err := out.AddEdge(x, v); err != nil {
			panic("annotate: " + err.Error())
		}
		labels.Delete(u, v)
		labels.Delete(x, y)
		labels.Set(u, y, l1)
		labels.Set(x, v, l1)
		accepted++
	}
	return out, labels, nil
}
