package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestIntHistogramBasics(t *testing.T) {
	h := NewIntHistogram()
	h.Add(1)
	h.Add(2)
	h.Add(2)
	h.AddN(5, 3)
	if h.Total() != 6 {
		t.Fatalf("Total = %d, want 6", h.Total())
	}
	if h.Count(2) != 2 {
		t.Errorf("Count(2) = %d, want 2", h.Count(2))
	}
	if got := h.P(5); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("P(5) = %v, want 0.5", got)
	}
	want := (1.0 + 2 + 2 + 15) / 6
	if got := h.Mean(); !almostEqual(got, want, 1e-12) {
		t.Errorf("Mean = %v, want %v", got, want)
	}
	vals := h.Values()
	if len(vals) != 3 || vals[0] != 1 || vals[1] != 2 || vals[2] != 5 {
		t.Errorf("Values = %v, want [1 2 5]", vals)
	}
}

func TestIntHistogramVariance(t *testing.T) {
	h := NewIntHistogram()
	for _, v := range []int{2, 4, 4, 4, 5, 5, 7, 9} {
		h.Add(v)
	}
	// Known example: mean 5, variance 4.
	if got := h.Mean(); !almostEqual(got, 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := h.Variance(); !almostEqual(got, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", got)
	}
}

func TestEntropyUniform(t *testing.T) {
	h := NewIntHistogram()
	for v := 0; v < 8; v++ {
		h.Add(v)
	}
	if got := h.Entropy(); !almostEqual(got, math.Log(8), 1e-12) {
		t.Errorf("Entropy = %v, want ln 8 = %v", got, math.Log(8))
	}
	single := NewIntHistogram()
	single.AddN(3, 10)
	if got := single.Entropy(); got != 0 {
		t.Errorf("Entropy of point mass = %v, want 0", got)
	}
}

func TestCDF(t *testing.T) {
	h := NewIntHistogram()
	h.AddN(1, 1)
	h.AddN(2, 1)
	h.AddN(4, 2)
	vals, cum := h.CDF()
	if len(vals) != 3 {
		t.Fatalf("CDF values = %v", vals)
	}
	wantCum := []float64{0.25, 0.5, 1.0}
	for i := range cum {
		if !almostEqual(cum[i], wantCum[i], 1e-12) {
			t.Errorf("cum[%d] = %v, want %v", i, cum[i], wantCum[i])
		}
	}
}

func TestKSDistance(t *testing.T) {
	a := NewIntHistogram()
	b := NewIntHistogram()
	for v := 0; v < 10; v++ {
		a.Add(v)
		b.Add(v)
	}
	if got := KSDistance(a, b); got != 0 {
		t.Errorf("KS of identical = %v, want 0", got)
	}
	c := NewIntHistogram()
	c.AddN(100, 10)
	if got := KSDistance(a, c); !almostEqual(got, 1, 1e-12) {
		t.Errorf("KS of disjoint = %v, want 1", got)
	}
	if got := KSDistance(a, NewIntHistogram()); got != 1 {
		t.Errorf("KS with empty = %v, want 1", got)
	}
}

func TestPoissonPMF(t *testing.T) {
	// Sum over support approx 1; mean lambda.
	lambda := 3.7
	sum, mean := 0.0, 0.0
	for k := 0; k < 100; k++ {
		p := PoissonPMF(lambda, k)
		sum += p
		mean += float64(k) * p
	}
	if !almostEqual(sum, 1, 1e-9) {
		t.Errorf("Poisson pmf sums to %v", sum)
	}
	if !almostEqual(mean, lambda, 1e-6) {
		t.Errorf("Poisson mean = %v, want %v", mean, lambda)
	}
	if PoissonPMF(lambda, -1) != 0 {
		t.Error("P(X=-1) != 0")
	}
}

func TestBinomialPMF(t *testing.T) {
	n, p := 20, 0.3
	sum, mean := 0.0, 0.0
	for k := 0; k <= n; k++ {
		q := BinomialPMF(n, p, k)
		sum += q
		mean += float64(k) * q
	}
	if !almostEqual(sum, 1, 1e-9) {
		t.Errorf("Binomial pmf sums to %v", sum)
	}
	if !almostEqual(mean, float64(n)*p, 1e-6) {
		t.Errorf("Binomial mean = %v, want %v", mean, float64(n)*p)
	}
	if got := BinomialPMF(5, 0, 0); got != 1 {
		t.Errorf("BinomialPMF(5,0,0) = %v, want 1", got)
	}
	if got := BinomialPMF(5, 1, 5); got != 1 {
		t.Errorf("BinomialPMF(5,1,5) = %v, want 1", got)
	}
	if got := BinomialPMF(5, 0.5, 6); got != 0 {
		t.Errorf("BinomialPMF(5,.5,6) = %v, want 0", got)
	}
}

func TestPowerLawValidation(t *testing.T) {
	if _, err := NewPowerLaw(2.1, 0, 5); err == nil {
		t.Error("kMin=0 accepted")
	}
	if _, err := NewPowerLaw(2.1, 5, 4); err == nil {
		t.Error("kMax<kMin accepted")
	}
}

func TestPowerLawSampleRange(t *testing.T) {
	pl, err := NewPowerLaw(2.1, 1, 50)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		k := pl.Sample(rng)
		if k < 1 || k > 50 {
			t.Fatalf("sample %d outside [1,50]", k)
		}
	}
}

func TestPowerLawEmpiricalMean(t *testing.T) {
	pl, err := NewPowerLaw(2.5, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	h := NewIntHistogram()
	for i := 0; i < 200000; i++ {
		h.Add(pl.Sample(rng))
	}
	if !almostEqual(h.Mean(), pl.Mean(), 0.05) {
		t.Errorf("empirical mean %v vs exact %v", h.Mean(), pl.Mean())
	}
	// Heavier tail must be rarer: monotone decreasing pmf.
	if h.P(1) <= h.P(2) || h.P(2) <= h.P(4) {
		t.Errorf("pmf not decreasing: P(1)=%v P(2)=%v P(4)=%v", h.P(1), h.P(2), h.P(4))
	}
}

func TestDegreeSequenceEvenSum(t *testing.T) {
	pl, err := NewPowerLaw(2.1, 1, 1000)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + int(seed%97+97)%97
		seq := pl.DegreeSequence(rng, n)
		if len(seq) != n {
			return false
		}
		sum := 0
		for _, k := range seq {
			if k < 1 {
				return false
			}
			sum += k
		}
		return sum%2 == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMeanStdDev(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := Mean(xs); !almostEqual(got, 2.5, 1e-12) {
		t.Errorf("Mean = %v", got)
	}
	if got := StdDev(xs); !almostEqual(got, math.Sqrt(1.25), 1e-12) {
		t.Errorf("StdDev = %v", got)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Error("empty-slice mean/stddev not 0")
	}
}
