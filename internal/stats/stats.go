// Package stats provides the small probability and statistics toolkit the
// dK-series pipeline relies on: integer histograms, discrete power-law
// sampling for the synthetic degree sequences of internal/datasets,
// reference probability mass functions (Poisson for the paper's §4.1.1
// stochastic constructions, binomial), entropy, and the distribution
// distances behind the D_d metrics of §4.1.4 targeting.
package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// IntHistogram counts occurrences of non-negative integer values.
type IntHistogram struct {
	count map[int]int
	total int
}

// NewIntHistogram returns an empty histogram.
func NewIntHistogram() *IntHistogram {
	return &IntHistogram{count: make(map[int]int)}
}

// Add increments the count of value v by 1.
func (h *IntHistogram) Add(v int) { h.AddN(v, 1) }

// AddN increments the count of value v by n.
func (h *IntHistogram) AddN(v, n int) {
	h.count[v] += n
	h.total += n
}

// Count returns the number of observations of v.
func (h *IntHistogram) Count(v int) int { return h.count[v] }

// Total returns the number of observations.
func (h *IntHistogram) Total() int { return h.total }

// Values returns the observed values in increasing order.
func (h *IntHistogram) Values() []int {
	out := make([]int, 0, len(h.count))
	for v := range h.count {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// P returns the empirical probability of v.
func (h *IntHistogram) P(v int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.count[v]) / float64(h.total)
}

// Mean returns the empirical mean.
func (h *IntHistogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	sum := 0.0
	for v, c := range h.count {
		sum += float64(v) * float64(c)
	}
	return sum / float64(h.total)
}

// Variance returns the (population) variance.
func (h *IntHistogram) Variance() float64 {
	if h.total == 0 {
		return 0
	}
	mean := h.Mean()
	sum := 0.0
	for v, c := range h.count {
		d := float64(v) - mean
		sum += d * d * float64(c)
	}
	return sum / float64(h.total)
}

// Entropy returns the Shannon entropy in nats.
func (h *IntHistogram) Entropy() float64 {
	if h.total == 0 {
		return 0
	}
	e := 0.0
	for _, c := range h.count {
		if c == 0 {
			continue
		}
		p := float64(c) / float64(h.total)
		e -= p * math.Log(p)
	}
	return e
}

// CDF returns the observed values and their cumulative probabilities.
func (h *IntHistogram) CDF() (values []int, cum []float64) {
	values = h.Values()
	cum = make([]float64, len(values))
	run := 0
	for i, v := range values {
		run += h.count[v]
		cum[i] = float64(run) / float64(h.total)
	}
	return values, cum
}

// KSDistance returns the Kolmogorov–Smirnov distance between the empirical
// CDFs of a and b: the maximum absolute difference between them over all
// integer points.
func KSDistance(a, b *IntHistogram) float64 {
	if a.Total() == 0 || b.Total() == 0 {
		return 1
	}
	points := map[int]bool{}
	for v := range a.count {
		points[v] = true
	}
	for v := range b.count {
		points[v] = true
	}
	xs := make([]int, 0, len(points))
	for v := range points {
		xs = append(xs, v)
	}
	sort.Ints(xs)
	ca, cb, maxD := 0, 0, 0.0
	for _, x := range xs {
		ca += a.count[x]
		cb += b.count[x]
		d := math.Abs(float64(ca)/float64(a.total) - float64(cb)/float64(b.total))
		if d > maxD {
			maxD = d
		}
	}
	return maxD
}

// Mean returns the arithmetic mean of xs, or 0 if xs is empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)))
}

// PoissonPMF returns P(X = k) for X ~ Poisson(lambda), computed in log
// space to stay stable for large k.
func PoissonPMF(lambda float64, k int) float64 {
	if k < 0 || lambda <= 0 {
		if k == 0 && lambda == 0 {
			return 1
		}
		return 0
	}
	lg, _ := math.Lgamma(float64(k) + 1)
	return math.Exp(float64(k)*math.Log(lambda) - lambda - lg)
}

// BinomialPMF returns P(X = k) for X ~ Binomial(n, p).
func BinomialPMF(n int, p float64, k int) float64 {
	if k < 0 || k > n || p < 0 || p > 1 {
		return 0
	}
	if p == 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	if p == 1 {
		if k == n {
			return 1
		}
		return 0
	}
	lgN, _ := math.Lgamma(float64(n) + 1)
	lgK, _ := math.Lgamma(float64(k) + 1)
	lgNK, _ := math.Lgamma(float64(n-k) + 1)
	return math.Exp(lgN - lgK - lgNK + float64(k)*math.Log(p) + float64(n-k)*math.Log(1-p))
}

// PowerLaw samples from the discrete power law P(k) ∝ k^(-gamma) on
// [kMin, kMax] by inverse-transform sampling over the precomputed CDF.
type PowerLaw struct {
	kMin int
	cum  []float64 // cum[i] = P(K <= kMin+i)
}

// NewPowerLaw builds a sampler for P(k) ∝ k^(-gamma), k in [kMin, kMax].
func NewPowerLaw(gamma float64, kMin, kMax int) (*PowerLaw, error) {
	if kMin < 1 || kMax < kMin {
		return nil, fmt.Errorf("stats: invalid power-law support [%d,%d]", kMin, kMax)
	}
	cum := make([]float64, kMax-kMin+1)
	run := 0.0
	for k := kMin; k <= kMax; k++ {
		run += math.Pow(float64(k), -gamma)
		cum[k-kMin] = run
	}
	for i := range cum {
		cum[i] /= run
	}
	return &PowerLaw{kMin: kMin, cum: cum}, nil
}

// Sample draws one value.
func (p *PowerLaw) Sample(rng *rand.Rand) int {
	u := rng.Float64()
	lo, hi := 0, len(p.cum)
	for lo < hi {
		mid := (lo + hi) / 2
		if p.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= len(p.cum) {
		lo = len(p.cum) - 1
	}
	return p.kMin + lo
}

// Mean returns the exact mean of the distribution.
func (p *PowerLaw) Mean() float64 {
	mean := 0.0
	prev := 0.0
	for i, c := range p.cum {
		mean += float64(p.kMin+i) * (c - prev)
		prev = c
	}
	return mean
}

// DegreeSequence draws n degrees and adjusts the sequence minimally so the
// total degree is even (a prerequisite for stub matching): if the sum is
// odd it increments one random minimum-degree entry.
func (p *PowerLaw) DegreeSequence(rng *rand.Rand, n int) []int {
	seq := make([]int, n)
	sum := 0
	for i := range seq {
		seq[i] = p.Sample(rng)
		sum += seq[i]
	}
	if sum%2 == 1 {
		// Bump a random minimal entry by one.
		minIdx := 0
		for i, k := range seq {
			if k < seq[minIdx] {
				minIdx = i
			}
		}
		seq[minIdx]++
	}
	return seq
}
