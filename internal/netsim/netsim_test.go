package netsim

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func build(t testing.TB, n int, edges [][2]int) *graph.Static {
	t.Helper()
	g := graph.NewCSR(n)
	for _, e := range edges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return g.Static()
}

func star(t testing.TB, leaves int) *graph.Static {
	g := graph.NewCSR(leaves + 1)
	for i := 1; i <= leaves; i++ {
		if err := g.AddEdge(0, i); err != nil {
			t.Fatal(err)
		}
	}
	return g.Static()
}

func complete(t testing.TB, n int) *graph.Static {
	g := graph.NewCSR(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if err := g.AddEdge(i, j); err != nil {
				t.Fatal(err)
			}
		}
	}
	return g.Static()
}

func TestRobustnessTargetedStar(t *testing.T) {
	// Removing the hub of a star shatters it: GCC falls to 1/n.
	s := star(t, 20)
	pts, err := Robustness(s, []float64{0, 0.05}, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].GCCFrac != 1 {
		t.Errorf("GCC before removal = %v, want 1", pts[0].GCCFrac)
	}
	// 5% of 21 nodes = 1 node removed — the hub (highest degree).
	want := 1.0 / 21
	if math.Abs(pts[1].GCCFrac-want) > 1e-9 {
		t.Errorf("GCC after hub removal = %v, want %v", pts[1].GCCFrac, want)
	}
}

func TestRobustnessRandomVsTargeted(t *testing.T) {
	// On a hub-dominated graph, targeted attack must hurt at least as
	// much as random failure at the same fraction.
	rng := rand.New(rand.NewSource(1))
	g := graph.NewCSR(200)
	for i := 1; i < 200; i++ {
		hub := (i % 5)
		if i > 4 {
			if err := g.AddEdge(i, hub); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 1; i < 5; i++ {
		if err := g.AddEdge(0, i); err != nil {
			t.Fatal(err)
		}
	}
	s := g.Static()
	fracs := []float64{0.01, 0.02, 0.025}
	tgt, err := Robustness(s, fracs, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	rnd, err := Robustness(s, fracs, false, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fracs {
		if tgt[i].GCCFrac > rnd[i].GCCFrac+1e-9 {
			t.Errorf("at %.3f: targeted GCC %v > random %v", fracs[i], tgt[i].GCCFrac, rnd[i].GCCFrac)
		}
	}
}

func TestRobustnessValidation(t *testing.T) {
	if _, err := Robustness(graph.NewCSR(0).Static(), []float64{0.1}, true, nil); !errors.Is(err, ErrInvalid) {
		t.Errorf("empty graph: err = %v, want ErrInvalid", err)
	}
	if _, err := Robustness(star(t, 3), []float64{0.1}, false, nil); !errors.Is(err, ErrInvalid) {
		t.Errorf("random mode without rng: err = %v, want ErrInvalid", err)
	}
	for _, frac := range []float64{-0.1, 1.5} {
		if _, err := Robustness(star(t, 3), []float64{frac}, true, nil); !errors.Is(err, ErrInvalid) {
			t.Errorf("frac %v: err = %v, want ErrInvalid", frac, err)
		}
	}
}

func TestRobustnessDegenerateGraphs(t *testing.T) {
	// Zero-edge and single-node graphs yield well-defined curves.
	pts, err := Robustness(graph.NewCSR(1).Static(), []float64{0, 1}, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].GCCFrac != 1 || pts[1].GCCFrac != 0 {
		t.Errorf("single node curve = %+v, want GCC 1 then 0", pts)
	}
	pts, err = Robustness(graph.NewCSR(5).Static(), []float64{0, 0.5}, false, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if math.IsNaN(p.GCCFrac) || p.GCCFrac < 0 || p.GCCFrac > 1 {
			t.Errorf("zero-edge curve point %+v out of range", p)
		}
	}
}

func TestWormSpreadCompleteGraph(t *testing.T) {
	// With beta = 1 on K_n, everything is infected after one round.
	s := complete(t, 12)
	res, err := WormSpread(s, 1, 10, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if got := res.RoundsTo(1.0); got != 1 {
		t.Errorf("full coverage at round %d, want 1", got)
	}
}

func TestWormSpreadPathIsSlow(t *testing.T) {
	// On a path, beta = 1 spreads one hop per round from the seed: the
	// number of rounds to full coverage is the seed's eccentricity.
	n := 30
	g := graph.NewCSR(n)
	for i := 0; i+1 < n; i++ {
		if err := g.AddEdge(i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	res, err := WormSpread(g.Static(), 1, 100, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	r := res.RoundsTo(1.0)
	if r < n/2-1 || r > n-1 {
		t.Errorf("path coverage in %d rounds, want between %d and %d", r, n/2-1, n-1)
	}
}

func TestWormSpreadMonotoneCoverageProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(60)
		g := graph.NewCSR(n)
		for i := 1; i < n; i++ {
			if err := g.AddEdge(i, rng.Intn(i)); err != nil {
				return false
			}
		}
		beta := 0.2 + 0.8*rng.Float64()
		res, err := WormSpread(g.Static(), beta, 200, rng)
		if err != nil {
			return false
		}
		for i := 1; i < len(res.Coverage); i++ {
			if res.Coverage[i] < res.Coverage[i-1] {
				return false
			}
		}
		// Connected graph + enough rounds: beta>0 eventually covers all.
		return res.Coverage[len(res.Coverage)-1] == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestWormSpreadValidation(t *testing.T) {
	s := star(t, 3)
	for _, beta := range []float64{1.5, 0, -0.5} {
		if _, err := WormSpread(s, beta, 10, rand.New(rand.NewSource(1))); !errors.Is(err, ErrInvalid) {
			t.Errorf("beta %v: err = %v, want ErrInvalid", beta, err)
		}
	}
	if _, err := WormSpread(s, 0.5, 10, nil); !errors.Is(err, ErrInvalid) {
		t.Error("nil rng accepted")
	}
	if _, err := WormSpread(graph.NewCSR(0).Static(), 0.5, 10, rand.New(rand.NewSource(1))); !errors.Is(err, ErrInvalid) {
		t.Error("empty graph accepted")
	}
}

func TestWormSpreadDegenerateGraphs(t *testing.T) {
	// A single node is fully covered by its own seeding; a zero-edge
	// graph never spreads past the seed. Neither may produce NaNs.
	res, err := WormSpread(graph.NewCSR(1).Static(), 0.5, 10, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage[0] != 1 {
		t.Errorf("single-node coverage = %v, want [1]", res.Coverage)
	}
	res, err = WormSpread(graph.NewCSR(4).Static(), 0.5, 10, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Coverage {
		if math.IsNaN(c) || c != 0.25 {
			t.Errorf("zero-edge coverage = %v, want all 0.25", res.Coverage)
		}
	}
}

func TestGreedyRoutingStar(t *testing.T) {
	// On a star every pair routes via the hub in <= 2 hops: success 1,
	// stretch 1 (shortest paths are also <= 2).
	s := star(t, 10)
	res, err := GreedyDegreeRouting(s, 200, 0, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	if res.SuccessRate != 1 {
		t.Errorf("success rate %v, want 1", res.SuccessRate)
	}
	if math.Abs(res.AvgStretch-1) > 1e-9 {
		t.Errorf("stretch %v, want 1", res.AvgStretch)
	}
}

func TestGreedyRoutingValidation(t *testing.T) {
	if _, err := GreedyDegreeRouting(star(t, 2), 10, 0, nil); !errors.Is(err, ErrInvalid) {
		t.Error("nil rng accepted")
	}
	for _, trials := range []int{0, -5} {
		if _, err := GreedyDegreeRouting(star(t, 2), trials, 0, rand.New(rand.NewSource(1))); !errors.Is(err, ErrInvalid) {
			t.Errorf("trials %d: want ErrInvalid", trials)
		}
	}
	// Fewer than two nodes: no routable pairs, well-defined zero result.
	res, err := GreedyDegreeRouting(graph.NewCSR(1).Static(), 10, 0, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if res.SuccessRate != 0 || res.AvgStretch != 0 {
		t.Errorf("single-node routing = %+v, want zero result", res)
	}
}

func TestGreedyRoutingStretchAtLeastOneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(50)
		g := graph.NewCSR(n)
		for i := 1; i < n; i++ {
			if err := g.AddEdge(i, rng.Intn(i)); err != nil {
				return false
			}
		}
		res, err := GreedyDegreeRouting(g.Static(), 50, 0, rng)
		if err != nil {
			return false
		}
		if res.SuccessRate < 0 || res.SuccessRate > 1 {
			return false
		}
		return res.AvgStretch == 0 || res.AvgStretch >= 1-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
