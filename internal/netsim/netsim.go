// Package netsim implements the protocol-level studies the paper's
// introduction motivates as consumers of realistic topologies: robustness
// to random failures and targeted attacks, worm/epidemic spreading speed,
// and degree-greedy routing efficiency. The experiments and examples use
// it to show, in application terms, the paper's claim that dK-random
// graphs of sufficient depth are drop-in replacements for measured
// topologies.
package netsim

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/graph"
)

// ErrInvalid marks parameter-validation failures. Callers (the scenario
// subsystem, the HTTP surface) match it with errors.Is to classify the
// failure as a client error (400) rather than an internal fault.
var ErrInvalid = errors.New("invalid parameter")

// invalidf builds a typed validation error.
func invalidf(format string, args ...any) error {
	return fmt.Errorf("netsim: %s: %w", fmt.Sprintf(format, args...), ErrInvalid)
}

// RobustnessPoint is one sample of a percolation curve.
type RobustnessPoint struct {
	RemovedFrac float64 // fraction of nodes removed
	GCCFrac     float64 // giant-component share of the surviving nodes
}

// Robustness removes increasing fractions of nodes — uniformly at random,
// or highest-degree-first when targeted is true (the attack model of
// Albert et al. that the paper's robustness citations build on) — and
// reports the giant-component share among all original nodes.
func Robustness(s *graph.Static, fracs []float64, targeted bool, rng *rand.Rand) ([]RobustnessPoint, error) {
	n := s.N()
	if n == 0 {
		return nil, invalidf("empty graph")
	}
	for _, frac := range fracs {
		if frac < 0 || frac > 1 {
			return nil, invalidf("removal fraction %v outside [0,1]", frac)
		}
	}
	// Removal order: random permutation or degree-descending.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	if targeted {
		sort.SliceStable(order, func(a, b int) bool {
			return s.Degree(order[a]) > s.Degree(order[b])
		})
	} else {
		if rng == nil {
			return nil, invalidf("random failures require rng")
		}
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
	}
	out := make([]RobustnessPoint, 0, len(fracs))
	removed := make([]bool, n)
	cut := 0
	for _, frac := range fracs {
		want := int(frac * float64(n))
		for cut < want && cut < n {
			removed[order[cut]] = true
			cut++
		}
		out = append(out, RobustnessPoint{frac, gccFracUnder(s, removed)})
	}
	return out, nil
}

// gccFracUnder computes the largest connected component among nodes not
// marked removed, as a fraction of the total node count.
func gccFracUnder(s *graph.Static, removed []bool) float64 {
	n := s.N()
	comp := make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	best := 0
	queue := make([]int32, 0, n)
	next := int32(0)
	for root := 0; root < n; root++ {
		if removed[root] || comp[root] >= 0 {
			continue
		}
		id := next
		next++
		size := 1
		comp[root] = id
		queue = append(queue[:0], int32(root))
		for len(queue) > 0 {
			u := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, v := range s.Neighbors(int(u)) {
				if !removed[v] && comp[v] < 0 {
					comp[v] = id
					size++
					queue = append(queue, v)
				}
			}
		}
		if size > best {
			best = size
		}
	}
	return float64(best) / float64(n)
}

// WormResult traces an SI ("susceptible-infected") epidemic: Coverage[r]
// is the infected fraction after round r (Coverage[0] is the seed).
type WormResult struct {
	Coverage []float64
}

// RoundsTo returns the first round at which coverage reaches the target
// fraction, or -1 if it never does.
func (w WormResult) RoundsTo(frac float64) int {
	for r, c := range w.Coverage {
		if c >= frac {
			return r
		}
	}
	return -1
}

// WormSpread runs a synchronous SI epidemic from a random seed: each
// round, every infected node infects each susceptible neighbor
// independently with probability beta. It stops when no new infections
// occur or maxRounds is reached. This is the "speed of worms spreading"
// experiment the paper ties to the distance distribution. beta must lie
// in (0,1]: a zero rate never spreads yet keeps every frontier node
// "infectious", so the loop would spin until maxRounds for nothing.
func WormSpread(s *graph.Static, beta float64, maxRounds int, rng *rand.Rand) (WormResult, error) {
	n := s.N()
	if n == 0 {
		return WormResult{}, invalidf("empty graph")
	}
	if rng == nil {
		return WormResult{}, invalidf("rng required")
	}
	if beta <= 0 || beta > 1 {
		return WormResult{}, invalidf("beta %v outside (0,1]", beta)
	}
	if maxRounds <= 0 {
		maxRounds = 64
	}
	infected := make([]bool, n)
	frontier := []int32{int32(rng.Intn(n))}
	infected[frontier[0]] = true
	count := 1
	res := WormResult{Coverage: []float64{1 / float64(n)}}
	for round := 0; round < maxRounds && len(frontier) > 0; round++ {
		var next []int32
		for _, u := range frontier {
			for _, v := range s.Neighbors(int(u)) {
				if infected[v] {
					continue
				}
				if beta >= 1 || rng.Float64() < beta {
					infected[v] = true
					count++
					next = append(next, v)
				}
			}
		}
		// Nodes that failed to infect some neighbors stay infectious:
		// carry them while they still have susceptible neighbors.
		if beta < 1 {
			for _, u := range frontier {
				for _, v := range s.Neighbors(int(u)) {
					if !infected[v] {
						next = append(next, u)
						break
					}
				}
			}
		}
		frontier = next
		res.Coverage = append(res.Coverage, float64(count)/float64(n))
		if count == n {
			break
		}
	}
	return res, nil
}

// RoutingResult summarizes a greedy-routing trial set.
type RoutingResult struct {
	SuccessRate float64 // fraction of trials that reached the target
	AvgStretch  float64 // mean (greedy hops / shortest hops) over successes
}

// GreedyDegreeRouting measures degree-greedy routing (forward to the
// highest-degree not-yet-visited neighbor, following the
// high-degree-first strategies the paper's searching/routing citations
// study) over random source–target pairs. TTL bounds each walk; ttl <= 0
// selects the default bound of 4n hops. Graphs with fewer than two nodes
// have no source–target pairs and yield the zero result rather than an
// error, so degenerate ensemble members produce well-defined curves.
func GreedyDegreeRouting(s *graph.Static, trials, ttl int, rng *rand.Rand) (RoutingResult, error) {
	n := s.N()
	if trials <= 0 {
		return RoutingResult{}, invalidf("trials %d must be positive", trials)
	}
	if n < 2 {
		return RoutingResult{}, nil
	}
	if rng == nil {
		return RoutingResult{}, invalidf("rng required")
	}
	if ttl <= 0 {
		ttl = 4 * n
	}
	dist := make([]int32, n)
	queue := make([]int32, 0, n)
	visited := make([]int, n) // trial stamp
	success := 0
	var stretchSum float64
	for trial := 1; trial <= trials; trial++ {
		src, dst := rng.Intn(n), rng.Intn(n)
		if src == dst {
			dst = (dst + 1) % n
		}
		// Shortest distance for the stretch denominator (BFS from dst so
		// greedy can also terminate on reaching dst's component check).
		graph.BFS(s, dst, dist, queue)
		if dist[src] < 0 {
			continue // unreachable: not counted as a trial failure
		}
		cur := src
		hops := 0
		ok := false
		for hops < ttl {
			if cur == dst {
				ok = true
				break
			}
			visited[cur] = trial
			// Move to the highest-degree unvisited neighbor; if the
			// target is adjacent, take it.
			bestN, bestDeg := -1, -1
			direct := false
			for _, v32 := range s.Neighbors(cur) {
				v := int(v32)
				if v == dst {
					direct = true
					break
				}
				if visited[v] != trial && s.Degree(v) > bestDeg {
					bestN, bestDeg = v, s.Degree(v)
				}
			}
			if direct {
				cur = dst
				hops++
				continue
			}
			if bestN < 0 {
				break // dead end
			}
			cur = bestN
			hops++
		}
		if ok {
			success++
			stretchSum += float64(hops) / float64(dist[src])
		}
	}
	res := RoutingResult{}
	if trials > 0 {
		res.SuccessRate = float64(success) / float64(trials)
	}
	if success > 0 {
		res.AvgStretch = stretchSum / float64(success)
	}
	return res, nil
}
