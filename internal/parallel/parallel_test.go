package parallel

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, w := range []int{1, 2, 8, 33} {
		for _, n := range []int{0, 1, 7, 100, 1000} {
			visits := make([]int32, n)
			ForWorkers(w, n, func(_, i int) {
				atomic.AddInt32(&visits[i], 1)
			})
			for i, v := range visits {
				if v != 1 {
					t.Fatalf("w=%d n=%d: index %d visited %d times", w, n, i, v)
				}
			}
		}
	}
}

func TestForWorkersIDsStableAndClamped(t *testing.T) {
	const n = 5
	ForWorkers(100, n, func(worker, i int) {
		if worker < 0 || worker >= n {
			t.Errorf("worker id %d out of range [0,%d)", worker, n)
		}
	})
}

// TestForWorkersScratchExclusive checks the per-worker-scratch contract:
// a worker id never runs two bodies concurrently, so indexing scratch by
// worker id is race-free. Run with -race to enforce it.
func TestForWorkersScratchExclusive(t *testing.T) {
	const w, n = 4, 400
	scratch := make([][]int, w) // plain non-atomic access, race detector is the assertion
	ForWorkers(w, n, func(worker, i int) {
		if scratch[worker] == nil {
			scratch[worker] = make([]int, 8)
		}
		for k := range scratch[worker] {
			scratch[worker][k] += i
		}
	})
}

func TestForErrReturnsLowestFailingIndex(t *testing.T) {
	failAt := map[int]bool{3: true, 17: true, 64: true}
	for _, w := range []int{1, 8} {
		SetWorkers(w)
		err := ForErr(100, func(i int) error {
			if failAt[i] {
				return fmt.Errorf("boom at %d", i)
			}
			return nil
		})
		SetWorkers(0)
		if err == nil || err.Error() != "boom at 3" {
			t.Fatalf("w=%d: got %v, want boom at 3", w, err)
		}
	}
	if err := ForErr(10, func(int) error { return nil }); err != nil {
		t.Fatalf("unexpected error %v", err)
	}
}

func TestForPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("panic in body not re-raised")
		}
	}()
	ForWorkers(4, 64, func(_, i int) {
		if i == 13 {
			panic(errors.New("worker panic"))
		}
	})
}

func TestSetWorkersAndDefault(t *testing.T) {
	SetWorkers(3)
	if Workers() != 3 {
		t.Errorf("Workers() = %d after SetWorkers(3)", Workers())
	}
	SetWorkers(0)
	if Workers() < 1 {
		t.Errorf("default Workers() = %d, want >= 1", Workers())
	}
	SetWorkers(-5)
	if Workers() < 1 {
		t.Errorf("Workers() = %d after SetWorkers(-5), want GOMAXPROCS default", Workers())
	}
}

func TestSubSeedDecorrelated(t *testing.T) {
	seen := make(map[int64]int)
	for _, base := range []int64{0, 1, 42, -7} {
		for i := 0; i < 4096; i++ {
			s := SubSeed(base, i)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: base=%d i=%d collides with earlier %d", base, i, prev)
			}
			seen[s] = i
			if s == base {
				t.Fatalf("SubSeed(%d,%d) returned the base seed", base, i)
			}
		}
	}
	// Derived streams must be a pure function of (base, i).
	if SubSeed(42, 7) != SubSeed(42, 7) {
		t.Fatal("SubSeed not deterministic")
	}
}

func TestChunksFixedPolicy(t *testing.T) {
	for _, n := range []int{0, 1, 5, 64, 1000} {
		for _, c := range []int{1, 4, 32, 2000} {
			b := Chunks(n, c)
			if b[0] != 0 || b[len(b)-1] != n {
				t.Fatalf("Chunks(%d,%d) bounds %v do not cover [0,%d)", n, c, b, n)
			}
			for i := 1; i < len(b); i++ {
				if b[i] <= b[i-1] && n > 0 {
					t.Fatalf("Chunks(%d,%d): empty or inverted chunk in %v", n, c, b)
				}
			}
		}
	}
	// The split must not depend on anything but (n, maxChunks).
	a, b := Chunks(977, 32), Chunks(977, 32)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Chunks not deterministic")
		}
	}
}

// TestOrderedReduceMergesInChunkOrder: merge must see partials strictly
// in chunk order at any worker count, and cover every item exactly once.
func TestOrderedReduceMergesInChunkOrder(t *testing.T) {
	for _, w := range []int{1, 8} {
		SetWorkers(w)
		var got []int
		covered := make([]int32, 1000)
		OrderedReduce(1000, 32,
			func(_, lo, hi int) int {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&covered[i], 1)
				}
				return lo
			},
			func(lo int) { got = append(got, lo) })
		SetWorkers(0)
		for i := 1; i < len(got); i++ {
			if got[i] <= got[i-1] {
				t.Fatalf("w=%d: merge out of chunk order: %v", w, got)
			}
		}
		for i, c := range covered {
			if c != 1 {
				t.Fatalf("w=%d: item %d produced %d times", w, i, c)
			}
		}
	}
}

// TestNestedPoolsBounded: nesting parallel loops must not multiply the
// goroutine fleet — the global helper bound keeps the total near
// Workers() and inner loops degrade to inline execution when saturated.
func TestNestedPoolsBounded(t *testing.T) {
	SetWorkers(4)
	defer SetWorkers(0)
	var peak atomic.Int32
	var cur atomic.Int32
	For(16, func(i int) {
		For(16, func(j int) {
			c := cur.Add(1)
			for {
				p := peak.Load()
				if c <= p || peak.CompareAndSwap(p, c) {
					break
				}
			}
			cur.Add(-1)
		})
	})
	// Callers participate at each nesting level, so the concurrent body
	// count can slightly exceed Workers(), but it must stay near it —
	// not Workers()^2 = 16.
	if p := peak.Load(); p > 8 {
		t.Fatalf("peak concurrent bodies %d, want <= 8 with Workers()=4", p)
	}
}

// TestPoolRaceSmoke exercises nested pools with per-item RNG streams the
// way the experiment layer does — run with -race to validate the
// concurrency discipline end to end.
func TestPoolRaceSmoke(t *testing.T) {
	var total atomic.Int64
	results := make([]int64, 16)
	For(16, func(i int) {
		rng := rand.New(rand.NewSource(SubSeed(99, i)))
		inner := make([]int64, 8)
		ForWorkers(4, 8, func(_, j int) {
			inner[j] = int64(j)
		})
		var s int64
		for _, v := range inner {
			s += v
		}
		results[i] = s + int64(rng.Intn(1))
		total.Add(1)
	})
	if total.Load() != 16 {
		t.Fatalf("ran %d items, want 16", total.Load())
	}
	for i, r := range results {
		if r != 28 {
			t.Fatalf("results[%d] = %d, want 28", i, r)
		}
	}
}
