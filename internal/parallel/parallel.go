// Package parallel is the shared concurrency layer of the repository: a
// bounded worker pool plus deterministic seed-splitting. The paper's
// evaluation (Section 5) recomputes expensive whole-graph metrics —
// Brandes betweenness, distance distributions, spectral bounds — per
// topology and per averaging seed, and all of those loops are
// embarrassingly parallel across BFS sources and replicas. This package
// lets internal/metrics, internal/experiments and internal/generate fan
// that work out without each re-inventing goroutine plumbing.
//
// Determinism is the design constraint, not an afterthought. Two rules
// make every parallel computation in this repository bit-identical to its
// workers=1 run:
//
//  1. Randomness is derived per work item, never per goroutine: item i
//     seeds its own rand.Rand from SubSeed(base, i) (or an equivalent
//     index-keyed derivation), so results cannot depend on which worker
//     happened to run the item.
//
//  2. Results are written into index i of a pre-sized slice and reduced
//     in index order after the pool drains. Floating-point reductions are
//     therefore summed in a fixed order that does not depend on worker
//     count or scheduling.
//
// The pool itself makes no ordering promises: For and ForWorkers hand
// items to goroutines dynamically (an atomic cursor), which balances load
// but means bodies must not rely on the item→worker assignment for
// anything except scratch-buffer reuse.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// workers holds the process-wide default worker count; 0 means "use
// runtime.GOMAXPROCS(0)". It is set from the -workers flag of the cmd/
// tools and read by every parallel loop in the repository.
var workers atomic.Int32

// Workers returns the process-wide default worker count.
func Workers() int {
	if w := workers.Load(); w > 0 {
		return int(w)
	}
	return runtime.GOMAXPROCS(0)
}

// SetWorkers sets the process-wide default worker count. Values <= 0
// restore the default (runtime.GOMAXPROCS(0)). Concurrency-safe, but the
// intended use is one call at program start from a -workers flag.
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	workers.Store(int32(n))
}

// inFlight counts helper goroutines currently spawned by ForWorkers
// across the whole process. Parallel loops nest freely (an experiment
// fans out averaging seeds whose metric sweeps fan out BFS sources);
// without a global bound that would multiply into W^d goroutines d
// levels deep. Instead every pool call runs on the calling goroutine and
// spawns helpers only while the process-wide head-room lasts, so the
// total number of CPU-bound goroutines stays near Workers() no matter
// how deeply loops nest — inner loops simply degrade to inline execution
// once the fleet is saturated.
var inFlight atomic.Int32

// acquireHelper reserves one helper slot up to limit, without blocking
// (blocking would deadlock nested loops). Reports whether a slot was won.
func acquireHelper(limit int32) bool {
	for {
		cur := inFlight.Load()
		if cur >= limit {
			return false
		}
		if inFlight.CompareAndSwap(cur, cur+1) {
			return true
		}
	}
}

// For runs body(i) for every i in [0, n) on up to Workers() goroutines
// and returns when all calls have finished. With one worker (or n <= 1)
// it runs inline with no goroutines at all, so serial profiles stay
// clean.
func For(n int, body func(i int)) {
	ForWorkers(Workers(), n, func(_, i int) { body(i) })
}

// ForWorkers runs body(worker, i) for every i in [0, n) on up to w
// goroutines: the caller's own goroutine plus at most w-1 helpers,
// subject to the process-wide helper bound (see inFlight). The worker
// argument is a stable id in [0, min(w, n)): bodies may index per-worker
// scratch buffers with it, because a given worker id never runs two
// bodies concurrently. Item→worker assignment is dynamic and
// unspecified.
//
// A panic in any body is re-raised on the calling goroutine after the
// pool drains, matching the behavior of the equivalent serial loop
// closely enough for callers that recover.
func ForWorkers(w, n int, body func(worker, i int)) {
	if n <= 0 {
		return
	}
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			body(0, i)
		}
		return
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicVal any
		panicked bool
	)
	run := func(worker int) {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			body(worker, i)
		}
	}
	// The helper budget honors both the explicit width and the global
	// default, so a direct ForWorkers(w, ...) call gets its w even when
	// the process default is lower.
	limit := int32(w - 1)
	if g := int32(Workers() - 1); g > limit {
		limit = g
	}
	for k := 1; k < w; k++ {
		if !acquireHelper(limit) {
			break
		}
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			defer inFlight.Add(-1)
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if !panicked {
						panicked, panicVal = true, r
					}
					panicMu.Unlock()
				}
			}()
			run(worker)
		}(k)
	}
	// The caller participates as worker 0; its panics drain the helpers
	// (deferred Wait) before propagating.
	defer func() {
		wg.Wait()
		if panicked {
			panic(panicVal)
		}
	}()
	run(0)
}

// ForErr runs body(i) for every i in [0, n) on up to Workers() goroutines
// and returns the error of the lowest failing index, or nil. After a
// failure at index f, items with index > f that have not started yet are
// skipped (cheap fail-fast); items below f always run, so the lowest
// failing index — and therefore the returned error — is deterministic
// regardless of worker count or scheduling.
func ForErr(n int, body func(i int) error) error {
	errs := make([]error, n)
	var minFail atomic.Int64
	minFail.Store(int64(n))
	For(n, func(i int) {
		if int64(i) > minFail.Load() {
			return
		}
		if err := body(i); err != nil {
			errs[i] = err
			for {
				cur := minFail.Load()
				if int64(i) >= cur || minFail.CompareAndSwap(cur, int64(i)) {
					break
				}
			}
		}
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// OrderedReduce is the chunk-ordered parallel reduction behind the
// deterministic metric sweeps: it partitions [0, nItems) into the fixed
// chunks of Chunks(nItems, maxChunks), computes one partial result per
// chunk on the pool (produce receives a stable worker id for scratch
// reuse plus the chunk's [lo, hi) range), and calls merge on every
// partial strictly in chunk order.
//
// Merging streams: a completed out-of-order partial is parked until its
// predecessors have merged, so at any moment only the out-of-order
// window — roughly the number of active workers, not the chunk count —
// is held live. merge calls are serialized (no locking needed inside),
// and because both the chunk split and the merge order are fixed, the
// reduction is bit-identical at any worker count.
func OrderedReduce[T any](nItems, maxChunks int, produce func(worker, lo, hi int) T, merge func(part T)) {
	bounds := Chunks(nItems, maxChunks)
	numChunks := len(bounds) - 1
	var (
		mu        sync.Mutex
		parked    = make(map[int]T)
		nextMerge int
	)
	ForWorkers(Workers(), numChunks, func(worker, c int) {
		part := produce(worker, bounds[c], bounds[c+1])
		mu.Lock()
		defer mu.Unlock()
		parked[c] = part
		for {
			p, ok := parked[nextMerge]
			if !ok {
				return
			}
			delete(parked, nextMerge)
			merge(p)
			nextMerge++
		}
	})
}

// SubSeed derives the i-th child seed of base with a SplitMix64 mixing
// step. Child seeds are decorrelated from the base and from each other,
// so per-replica rand.Rand streams built as
//
//	rand.New(rand.NewSource(parallel.SubSeed(seed, i)))
//
// are statistically independent while remaining a pure function of
// (seed, i) — the property the determinism guarantee rests on. Never
// share one *rand.Rand across goroutines.
func SubSeed(base int64, i int) int64 {
	z := uint64(base) + 0x9E3779B97F4A7C15*uint64(i+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// Chunks splits n items into at most maxChunks contiguous ranges of
// near-equal size and returns the range bounds: chunk c covers
// [bounds[c], bounds[c+1]). The split depends only on n and maxChunks —
// never on the worker count — so per-chunk partial results can be reduced
// in chunk order to give bit-identical output at any parallelism level.
func Chunks(n, maxChunks int) []int {
	if n < 0 {
		n = 0
	}
	c := maxChunks
	if c < 1 {
		c = 1
	}
	if c > n {
		c = n
	}
	if c == 0 {
		return []int{0}
	}
	bounds := make([]int, c+1)
	for i := 0; i <= c; i++ {
		bounds[i] = i * n / c
	}
	return bounds
}
