package scenario

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/pkg/dkapi"
)

// testGraph builds a connected random graph (a random tree plus extra
// edges) so every scenario kind has meaningful work.
func testGraph(t testing.TB, n int, seed int64) *graph.Static {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := graph.NewCSR(n)
	for i := 1; i < n; i++ {
		if err := g.AddEdge(i, rng.Intn(i)); err != nil {
			t.Fatal(err)
		}
	}
	for k := 0; k < n/2; k++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a != b {
			_ = g.AddEdge(a, b) // duplicates are fine to skip
		}
	}
	return g.Static()
}

func allSpecs() []dkapi.ScenarioSpec {
	return []dkapi.ScenarioSpec{
		{Kind: dkapi.ScenarioRobustness, Fracs: []float64{0, 0.1, 0.3}, Targeted: true},
		{Kind: dkapi.ScenarioRobustness, Fracs: []float64{0, 0.2}, Trials: 3},
		{Kind: dkapi.ScenarioEpidemic, Beta: 0.4, Rounds: 16, Trials: 2},
		{Kind: dkapi.ScenarioRouting, Pairs: 40, Trials: 2},
	}
}

func TestValidateSpecs(t *testing.T) {
	if err := ValidateSpecs(allSpecs()); err != nil {
		t.Fatalf("valid specs rejected: %v", err)
	}
	bad := []struct {
		name  string
		specs []dkapi.ScenarioSpec
	}{
		{"empty", nil},
		{"unknown kind", []dkapi.ScenarioSpec{{Kind: "quantum"}}},
		{"missing kind", []dkapi.ScenarioSpec{{}}},
		{"robustness without fracs", []dkapi.ScenarioSpec{{Kind: "robustness"}}},
		{"frac above 1", []dkapi.ScenarioSpec{{Kind: "robustness", Fracs: []float64{1.5}}}},
		{"frac below 0", []dkapi.ScenarioSpec{{Kind: "robustness", Fracs: []float64{-0.1}}}},
		{"frac NaN", []dkapi.ScenarioSpec{{Kind: "robustness", Fracs: []float64{math.NaN()}}}},
		{"robustness with beta", []dkapi.ScenarioSpec{{Kind: "robustness", Fracs: []float64{0.1}, Beta: 0.5}}},
		{"epidemic beta zero", []dkapi.ScenarioSpec{{Kind: "epidemic"}}},
		{"epidemic beta above 1", []dkapi.ScenarioSpec{{Kind: "epidemic", Beta: 1.5}}},
		{"epidemic with fracs", []dkapi.ScenarioSpec{{Kind: "epidemic", Beta: 0.5, Fracs: []float64{0.1}}}},
		{"epidemic rounds negative", []dkapi.ScenarioSpec{{Kind: "epidemic", Beta: 0.5, Rounds: -1}}},
		{"epidemic rounds above cap", []dkapi.ScenarioSpec{{Kind: "epidemic", Beta: 0.5, Rounds: MaxRounds + 1}}},
		{"routing with targeted", []dkapi.ScenarioSpec{{Kind: "routing", Targeted: true}}},
		{"routing pairs negative", []dkapi.ScenarioSpec{{Kind: "routing", Pairs: -1}}},
		{"routing ttl negative", []dkapi.ScenarioSpec{{Kind: "routing", TTL: -1}}},
		{"trials negative", []dkapi.ScenarioSpec{{Kind: "routing", Trials: -1}}},
		{"trials above cap", []dkapi.ScenarioSpec{{Kind: "routing", Trials: MaxTrials + 1}}},
		{"too many scenarios", make([]dkapi.ScenarioSpec, MaxScenarios+1)},
	}
	for _, tc := range bad {
		if err := ValidateSpecs(tc.specs); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestRunDeterministicAcrossWorkers(t *testing.T) {
	defer parallel.SetWorkers(0)
	measured := testGraph(t, 60, 1)
	ensemble := []*graph.Static{testGraph(t, 60, 2), testGraph(t, 60, 3), testGraph(t, 60, 4)}
	var want []byte
	for _, w := range []int{1, 2, 4, 8} {
		parallel.SetWorkers(w)
		var all []dkapi.ScenarioCurves
		for si, sp := range allSpecs() {
			sc, err := Run(measured, ensemble, sp, parallel.SubSeed(7, si))
			if err != nil {
				t.Fatalf("workers=%d: %v", w, err)
			}
			all = append(all, sc)
		}
		got, err := json.Marshal(all)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = got
		} else if string(got) != string(want) {
			t.Fatalf("workers=%d: curves differ from workers=1:\n%s\nvs\n%s", w, got, want)
		}
	}
}

func TestRunIdenticalEnsembleHasZeroDivergence(t *testing.T) {
	// A deterministic scenario (targeted robustness) over an ensemble of
	// copies of the measured graph must band exactly on the measured
	// curve with zero divergence.
	g := testGraph(t, 40, 5)
	sp := dkapi.ScenarioSpec{Kind: dkapi.ScenarioRobustness, Fracs: []float64{0, 0.25, 0.5}, Targeted: true}
	res, err := Run(g, []*graph.Static{g, g, g}, sp, 11)
	if err != nil {
		t.Fatal(err)
	}
	if res.Divergence == nil || *res.Divergence != 0 {
		t.Errorf("divergence = %v, want 0", res.Divergence)
	}
	for i, b := range res.Ensemble {
		m := res.Measured[i]
		if b.X != m.X || b.Mean != m.Y || b.Min != m.Y || b.Max != m.Y {
			t.Errorf("band[%d] = %+v, want collapsed on measured %+v", i, b, m)
		}
	}
}

func TestRunMeasuredOnlyOmitsBand(t *testing.T) {
	g := testGraph(t, 30, 6)
	sp := dkapi.ScenarioSpec{Kind: dkapi.ScenarioRouting}
	res, err := Run(g, nil, sp, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ensemble != nil || res.Divergence != nil {
		t.Errorf("measured-only run has ensemble band: %+v", res)
	}
	if len(res.Measured) != 2 {
		t.Errorf("routing curve has %d points, want 2", len(res.Measured))
	}
}

func TestRunEpidemicFixedGrid(t *testing.T) {
	// Epidemic curves share a fixed grid of rounds+1 points — graphs
	// that saturate early hold their final coverage — and coverage is
	// monotone in [0, 1].
	measured := testGraph(t, 50, 7)
	ensemble := []*graph.Static{testGraph(t, 10, 8)} // saturates much sooner
	sp := dkapi.ScenarioSpec{Kind: dkapi.ScenarioEpidemic, Beta: 0.9, Rounds: 20, Trials: 2}
	res, err := Run(measured, ensemble, sp, 13)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Measured) != 21 || len(res.Ensemble) != 21 {
		t.Fatalf("grid = %d/%d points, want 21", len(res.Measured), len(res.Ensemble))
	}
	for i := range res.Measured {
		y := res.Measured[i].Y
		if math.IsNaN(y) || y < 0 || y > 1 {
			t.Errorf("coverage[%d] = %v out of range", i, y)
		}
		if i > 0 && y < res.Measured[i-1].Y {
			t.Errorf("coverage not monotone at %d", i)
		}
	}
	if last := res.Ensemble[20]; last.Max != 1 {
		t.Errorf("small replica should saturate: %+v", last)
	}
}

func TestRunDegenerateGraphs(t *testing.T) {
	// Single-node measured graph and zero-edge replicas produce finite,
	// well-defined curves for every kind.
	single := graph.NewCSR(1).Static()
	zeroEdge := graph.NewCSR(5).Static()
	for _, sp := range []dkapi.ScenarioSpec{
		{Kind: dkapi.ScenarioRobustness, Fracs: []float64{0, 1}, Targeted: true},
		{Kind: dkapi.ScenarioEpidemic, Beta: 0.5, Rounds: 4},
		{Kind: dkapi.ScenarioRouting, Pairs: 8},
	} {
		res, err := Run(single, []*graph.Static{zeroEdge}, sp, 17)
		if err != nil {
			t.Fatalf("%s: %v", sp.Kind, err)
		}
		for _, p := range res.Measured {
			if math.IsNaN(p.Y) || math.IsInf(p.Y, 0) {
				t.Errorf("%s: measured point %+v not finite", sp.Kind, p)
			}
		}
		for _, b := range res.Ensemble {
			if math.IsNaN(b.Mean) || math.IsNaN(b.Min) || math.IsNaN(b.Max) {
				t.Errorf("%s: band point %+v not finite", sp.Kind, b)
			}
		}
	}
}
