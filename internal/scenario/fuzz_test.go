package scenario

import (
	"encoding/json"
	"testing"

	"repro/pkg/dkapi"
)

// FuzzScenarioSpec hardens spec validation against arbitrary wire
// bodies: whatever JSON a client sends for a netsim step's scenarios
// array, ValidateSpecs must classify it — never panic. Accepted specs
// must additionally survive withDefaults with their knobs still in
// range, since Run trusts validated specs.
func FuzzScenarioSpec(f *testing.F) {
	f.Add(`[{"kind":"robustness","fracs":[0,0.5,1],"targeted":true}]`)
	f.Add(`[{"kind":"epidemic","beta":0.5,"rounds":8,"trials":2}]`)
	f.Add(`[{"kind":"routing","pairs":16,"ttl":64}]`)
	f.Add(`[{"kind":"quantum"}]`)
	f.Add(`[{"kind":"robustness","fracs":[1e308,-1e308]}]`)
	f.Add(`[{"kind":"epidemic","beta":1e-300}]`)
	f.Add(`[]`)
	f.Add(`[{}]`)
	f.Fuzz(func(t *testing.T, body string) {
		var specs []dkapi.ScenarioSpec
		if err := json.Unmarshal([]byte(body), &specs); err != nil {
			return
		}
		if err := ValidateSpecs(specs); err != nil {
			return
		}
		for _, sp := range specs {
			sp = withDefaults(sp)
			if sp.Trials < 1 || sp.Trials > MaxTrials {
				t.Fatalf("validated spec has trials %d after defaults", sp.Trials)
			}
			switch sp.Kind {
			case dkapi.ScenarioEpidemic:
				if sp.Rounds < 1 || sp.Rounds > MaxRounds {
					t.Fatalf("validated epidemic spec has rounds %d after defaults", sp.Rounds)
				}
			case dkapi.ScenarioRouting:
				if sp.Pairs < 1 || sp.Pairs > MaxPairs {
					t.Fatalf("validated routing spec has pairs %d after defaults", sp.Pairs)
				}
			}
		}
	})
}
