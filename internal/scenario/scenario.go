// Package scenario turns the protocol studies of internal/netsim into a
// deterministic, parallel pipeline citizen. The paper's application
// claim (Section 1, Section 5) is behavioral: dK-random graphs of
// sufficient depth should be drop-in replacements for a measured
// topology under failure/attack percolation, worm spreading, and
// degree-greedy routing. This package runs a typed scenario spec against
// an ensemble — the measured graph plus its dK-random replicas — and
// reduces the (graph × trial) fan-out into comparison curves: the
// measured graph's trial-mean curve, the ensemble's mean/min/max band,
// and a divergence summary (max over x of |measured − ensemble mean|).
//
// Determinism contract: curves are a pure function of (graphs, spec,
// seed). Every (graph, trial) task derives its own rand.Rand from
// parallel.SubSeed and writes into its own slot of a pre-sized slice;
// the reduction then runs sequentially in index order, so results are
// bit-identical at any worker count.
package scenario

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/netsim"
	"repro/internal/parallel"
	"repro/pkg/dkapi"
)

// Spec bounds. They cap the work one netsim step can request; requests
// beyond them fail validation (HTTP 400), mirroring pipeline.Limits.
const (
	MaxScenarios = 16   // scenarios per netsim step
	MaxFracs     = 128  // removal fractions per robustness scenario
	MaxTrials    = 128  // independent trials per graph
	MaxRounds    = 1024 // epidemic rounds
	MaxPairs     = 4096 // routing source–target pairs per trial
	MaxTTL       = 1 << 20
)

// Defaults applied by withDefaults for knobs left zero.
const (
	DefaultTrials = 1
	DefaultRounds = 32
	DefaultPairs  = 32
)

// ErrInvalidSpec marks scenario-spec validation failures; the wire
// surface maps it (via pipeline.Validate) to 400 bad_request.
var ErrInvalidSpec = errors.New("invalid scenario spec")

// invalidf builds a typed validation error.
func invalidf(format string, args ...any) error {
	return fmt.Errorf("%s: %w", fmt.Sprintf(format, args...), ErrInvalidSpec)
}

// ValidateSpecs checks the scenario list of a netsim step. It is pure —
// no graph access — so the service rejects malformed requests
// synchronously and recovery can re-validate journaled specs.
func ValidateSpecs(specs []dkapi.ScenarioSpec) error {
	if len(specs) == 0 {
		return invalidf("netsim requires at least one scenario")
	}
	if len(specs) > MaxScenarios {
		return invalidf("%d scenarios; the limit is %d", len(specs), MaxScenarios)
	}
	for i, sp := range specs {
		if err := validateSpec(sp); err != nil {
			return fmt.Errorf("scenario %d (%s): %w", i, sp.Kind, err)
		}
	}
	return nil
}

// validateSpec checks one spec: the kind's required knobs are in range
// and knobs of other kinds are left zero, so a typo'd field fails loudly
// instead of being silently ignored.
func validateSpec(sp dkapi.ScenarioSpec) error {
	if sp.Trials < 0 || sp.Trials > MaxTrials {
		return invalidf("trials=%d outside 0..%d (0 selects the default %d)", sp.Trials, MaxTrials, DefaultTrials)
	}
	forbid := func(name string, set bool) error {
		if set {
			return invalidf("%s does not apply to kind %q", name, sp.Kind)
		}
		return nil
	}
	switch sp.Kind {
	case dkapi.ScenarioRobustness:
		if len(sp.Fracs) == 0 {
			return invalidf("fracs is required")
		}
		if len(sp.Fracs) > MaxFracs {
			return invalidf("%d fracs; the limit is %d", len(sp.Fracs), MaxFracs)
		}
		for _, f := range sp.Fracs {
			if f < 0 || f > 1 || f != f {
				return invalidf("removal fraction %v outside [0,1]", f)
			}
		}
		for _, c := range []struct {
			name string
			set  bool
		}{{"beta", sp.Beta != 0}, {"rounds", sp.Rounds != 0}, {"pairs", sp.Pairs != 0}, {"ttl", sp.TTL != 0}} {
			if err := forbid(c.name, c.set); err != nil {
				return err
			}
		}
	case dkapi.ScenarioEpidemic:
		if sp.Beta <= 0 || sp.Beta > 1 || sp.Beta != sp.Beta {
			return invalidf("beta %v outside (0,1]", sp.Beta)
		}
		if sp.Rounds < 0 || sp.Rounds > MaxRounds {
			return invalidf("rounds=%d outside 0..%d (0 selects the default %d)", sp.Rounds, MaxRounds, DefaultRounds)
		}
		for _, c := range []struct {
			name string
			set  bool
		}{{"fracs", len(sp.Fracs) > 0}, {"targeted", sp.Targeted}, {"pairs", sp.Pairs != 0}, {"ttl", sp.TTL != 0}} {
			if err := forbid(c.name, c.set); err != nil {
				return err
			}
		}
	case dkapi.ScenarioRouting:
		if sp.Pairs < 0 || sp.Pairs > MaxPairs {
			return invalidf("pairs=%d outside 0..%d (0 selects the default %d)", sp.Pairs, MaxPairs, DefaultPairs)
		}
		if sp.TTL < 0 || sp.TTL > MaxTTL {
			return invalidf("ttl=%d outside 0..%d (0 selects the default 4n)", sp.TTL, MaxTTL)
		}
		for _, c := range []struct {
			name string
			set  bool
		}{{"fracs", len(sp.Fracs) > 0}, {"targeted", sp.Targeted}, {"beta", sp.Beta != 0}, {"rounds", sp.Rounds != 0}} {
			if err := forbid(c.name, c.set); err != nil {
				return err
			}
		}
	case "":
		return invalidf("kind is required")
	default:
		return invalidf("unknown kind %q (want robustness|epidemic|routing)", sp.Kind)
	}
	return nil
}

// withDefaults fills the zero knobs of a validated spec.
func withDefaults(sp dkapi.ScenarioSpec) dkapi.ScenarioSpec {
	if sp.Trials == 0 {
		sp.Trials = DefaultTrials
	}
	if sp.Kind == dkapi.ScenarioEpidemic && sp.Rounds == 0 {
		sp.Rounds = DefaultRounds
	}
	if sp.Kind == dkapi.ScenarioRouting && sp.Pairs == 0 {
		sp.Pairs = DefaultPairs
	}
	return sp
}

// Run executes one scenario over the measured graph and its replica
// ensemble and reduces the fan-out into comparison curves. seed is the
// scenario's own seed stream (the caller derives one per scenario from
// the step seed); sp must have passed validateSpec.
func Run(measured *graph.Static, ensemble []*graph.Static, sp dkapi.ScenarioSpec, seed int64) (dkapi.ScenarioCurves, error) {
	sp = withDefaults(sp)
	graphs := make([]*graph.Static, 0, 1+len(ensemble))
	graphs = append(graphs, measured)
	graphs = append(graphs, ensemble...)
	trials := sp.Trials
	nTasks := len(graphs) * trials
	curves := make([][]dkapi.CurvePoint, nTasks)
	err := parallel.ForErr(nTasks, func(i int) error {
		rng := rand.New(rand.NewSource(parallel.SubSeed(seed, i)))
		c, err := runTrial(graphs[i/trials], sp, rng)
		curves[i] = c
		return err
	})
	if err != nil {
		return dkapi.ScenarioCurves{}, err
	}
	// Reduce sequentially, in index order: per-graph trial means first,
	// then the ensemble band over the replica means.
	per := make([][]dkapi.CurvePoint, len(graphs))
	for gi := range graphs {
		per[gi] = meanCurve(curves[gi*trials : (gi+1)*trials])
	}
	res := dkapi.ScenarioCurves{Kind: sp.Kind, Trials: trials, Measured: per[0]}
	if len(graphs) > 1 {
		res.Ensemble = band(per[1:])
		div := divergence(per[0], res.Ensemble)
		res.Divergence = &div
	}
	return res, nil
}

// runTrial runs one (graph, trial) task and returns its curve on the
// scenario's fixed x grid.
func runTrial(s *graph.Static, sp dkapi.ScenarioSpec, rng *rand.Rand) ([]dkapi.CurvePoint, error) {
	switch sp.Kind {
	case dkapi.ScenarioRobustness:
		pts, err := netsim.Robustness(s, sp.Fracs, sp.Targeted, rng)
		if err != nil {
			return nil, err
		}
		out := make([]dkapi.CurvePoint, len(pts))
		for i, p := range pts {
			out[i] = dkapi.CurvePoint{X: p.RemovedFrac, Y: p.GCCFrac}
		}
		return out, nil
	case dkapi.ScenarioEpidemic:
		res, err := netsim.WormSpread(s, sp.Beta, sp.Rounds, rng)
		if err != nil {
			return nil, err
		}
		// Fix the grid to rounds+1 points so curves from graphs that
		// saturate early still align for the band reduction: coverage
		// holds at its final value after the epidemic stops.
		out := make([]dkapi.CurvePoint, sp.Rounds+1)
		last := 0.0
		for i := range out {
			if i < len(res.Coverage) {
				last = res.Coverage[i]
			}
			out[i] = dkapi.CurvePoint{X: float64(i), Y: last}
		}
		return out, nil
	case dkapi.ScenarioRouting:
		res, err := netsim.GreedyDegreeRouting(s, sp.Pairs, sp.TTL, rng)
		if err != nil {
			return nil, err
		}
		return []dkapi.CurvePoint{{X: 0, Y: res.SuccessRate}, {X: 1, Y: res.AvgStretch}}, nil
	default:
		return nil, invalidf("unknown kind %q", sp.Kind)
	}
}

// meanCurve averages trial curves pointwise. All trials of one scenario
// share the x grid, so the mean is taken y-wise at each index, summing
// in trial order for bit-stable floats.
func meanCurve(trials [][]dkapi.CurvePoint) []dkapi.CurvePoint {
	out := make([]dkapi.CurvePoint, len(trials[0]))
	copy(out, trials[0])
	for _, t := range trials[1:] {
		for i := range out {
			out[i].Y += t[i].Y
		}
	}
	inv := 1 / float64(len(trials))
	for i := range out {
		out[i].Y *= inv
	}
	return out
}

// band folds the per-replica mean curves into mean/min/max at each x,
// summing in replica order.
func band(replicas [][]dkapi.CurvePoint) []dkapi.BandPoint {
	out := make([]dkapi.BandPoint, len(replicas[0]))
	for i, p := range replicas[0] {
		out[i] = dkapi.BandPoint{X: p.X, Mean: p.Y, Min: p.Y, Max: p.Y}
	}
	for _, r := range replicas[1:] {
		for i := range out {
			y := r[i].Y
			out[i].Mean += y
			if y < out[i].Min {
				out[i].Min = y
			}
			if y > out[i].Max {
				out[i].Max = y
			}
		}
	}
	inv := 1 / float64(len(replicas))
	for i := range out {
		out[i].Mean *= inv
	}
	return out
}

// divergence is the scenario summary: the maximum pointwise distance
// between the measured curve and the ensemble mean.
func divergence(measured []dkapi.CurvePoint, ensemble []dkapi.BandPoint) float64 {
	max := 0.0
	for i := range measured {
		d := measured[i].Y - ensemble[i].Mean
		if d < 0 {
			d = -d
		}
		if d > max {
			max = d
		}
	}
	return max
}
