// Package datasets synthesizes the reference topologies the paper
// evaluates on. The originals (CAIDA skitter, RouteViews BGP, RIPE WHOIS,
// and the HOT router graph of Li et al.) are proprietary measurement data
// we cannot ship; these constructors reproduce their structural signatures
// — the properties the paper's experiments actually exercise — and are
// documented as substitutions in DESIGN.md.
//
//   - Skitter: an AS-like graph with a power-law degree sequence,
//     disassortative mixing and strong clustering, built with the
//     repository's own machinery (matching construction + likelihood-
//     minimizing and clustering-maximizing explorations).
//
//   - HOT: a router-like graph built as a heuristically-optimized
//     hierarchy: a sparse low-degree core mesh, mid-degree gateways, and
//     high-degree access routers at the periphery fanning out to
//     degree-1 hosts — the structure that makes degree-distribution-only
//     generators fail on it (the paper's central hard case).
package datasets

import (
	"fmt"
	"math/rand"

	"repro/internal/dk"
	"repro/internal/generate"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/stats"
)

// SkitterConfig parametrizes the AS-like topology. The zero value is
// replaced by defaults sized for fast experimentation; use PaperScale for
// the full-size graph.
type SkitterConfig struct {
	// N is the target node count (default 2000).
	N int
	// Gamma is the power-law exponent of the degree distribution
	// (default 2.0, giving k̄ in the 5–7 range of measured AS graphs).
	Gamma float64
	// TargetR is the assortativity coefficient to steer toward
	// (default −0.24, the paper's skitter value).
	TargetR float64
	// TargetC is the mean clustering to steer toward (default 0.46).
	TargetC float64
	// Seed drives all randomness.
	Seed int64
}

func (c SkitterConfig) withDefaults() SkitterConfig {
	if c.N == 0 {
		c.N = 2000
	}
	if c.Gamma == 0 {
		c.Gamma = 2.0
	}
	if c.TargetR == 0 {
		c.TargetR = -0.24
	}
	if c.TargetC == 0 {
		c.TargetC = 0.46
	}
	return c
}

// PaperScaleSkitter returns the configuration matching the paper's
// skitter graph size (9204 nodes).
func PaperScaleSkitter(seed int64) SkitterConfig {
	return SkitterConfig{N: 9204, Seed: seed}
}

// Skitter synthesizes the AS-like reference topology: a connected simple
// graph whose degree sequence follows a truncated power law and whose
// mixing and clustering are steered to the configured targets by
// dK-machinery (S-minimizing 1K exploration, then C̄-maximizing 2K
// exploration — which preserves the degree distribution and JDD shape
// reached so far).
func Skitter(cfg SkitterConfig) (*graph.CSR, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	kMax := cfg.N / 4
	if kMax < 3 {
		kMax = 3
	}
	pl, err := stats.NewPowerLaw(cfg.Gamma, 1, kMax)
	if err != nil {
		return nil, err
	}
	var seq []int
	for attempt := 0; ; attempt++ {
		seq = pl.DegreeSequence(rng, cfg.N)
		if dk.Graphical(seq) {
			break
		}
		if attempt > 100 {
			return nil, fmt.Errorf("datasets: could not draw a graphical power-law sequence")
		}
	}
	g, err := generate.Matching1K(dk.NewDegreeDist(seq), generate.Options{Rng: rng})
	if err != nil {
		return nil, fmt.Errorf("datasets: skitter base: %w", err)
	}
	g, _ = graph.GiantComponent(g)

	// Steer assortativity down (disassortative hubs-to-leaves mixing) by
	// minimizing the likelihood S in bounded chunks.
	if err := exploreUntil(g, generate.MetricLikelihood, false, rng, func() bool {
		return metrics.Assortativity(g.Static()) <= cfg.TargetR
	}); err != nil {
		return nil, err
	}
	// Raise clustering to the target with 2K-preserving rewiring.
	if err := exploreUntil(g, generate.MetricClustering, true, rng, func() bool {
		return metrics.MeanClustering(g.Static()) >= cfg.TargetC
	}); err != nil {
		return nil, err
	}
	// Exploration can strand small components only if connectivity broke;
	// re-extract the GCC defensively.
	g, _ = graph.GiantComponent(g)
	return g, nil
}

// exploreUntil runs dK-preserving exploration on g in place, in chunks of
// proposals, until done() reports the target is reached or progress
// stalls.
func exploreUntil(g *graph.CSR, metric generate.ExploreMetric, maximize bool, rng *rand.Rand, done func() bool) error {
	const chunks = 60
	chunk := 4 * g.M()
	prevAccepted := -1
	for i := 0; i < chunks && !done(); i++ {
		res, err := generate.Explore(g, metric, generate.ExploreOptions{
			Rng:         rng,
			Maximize:    maximize,
			MaxAttempts: chunk,
			Patience:    chunk,
		})
		if err != nil {
			return err
		}
		// Explore works on a copy; adopt its result.
		*g = *res.FinalGraph
		if res.Stats.Accepted == 0 && prevAccepted == 0 {
			break // stalled two chunks in a row
		}
		prevAccepted = res.Stats.Accepted
	}
	return nil
}

// HOTConfig parametrizes the router-like topology.
type HOTConfig struct {
	// Hosts is the number of degree-1 end hosts (default 800).
	Hosts int
	// AccessRouters aggregate hosts (default 60); their degrees are drawn
	// from a skewed allocation so the hubs sit at the periphery.
	AccessRouters int
	// Gateways bridge access routers to the core (default 48).
	Gateways int
	// CoreSize is the number of low-degree core routers (default 12).
	CoreSize int
	// ExtraLinks adds redundant gateway–gateway/core links beyond the
	// tree, giving the ~5% cycle budget of the HOT graph (default 30).
	ExtraLinks int
	// Seed drives all randomness.
	Seed int64
}

func (c HOTConfig) withDefaults() HOTConfig {
	if c.Hosts == 0 {
		c.Hosts = 800
	}
	if c.AccessRouters == 0 {
		c.AccessRouters = 60
	}
	if c.Gateways == 0 {
		c.Gateways = 48
	}
	if c.CoreSize == 0 {
		c.CoreSize = 12
	}
	if c.ExtraLinks == 0 {
		c.ExtraLinks = 30
	}
	return c
}

// HOTRoles labels the hierarchy layer of each node of a HOT graph.
type HOTRoles struct {
	Core, Gateway, Access, Host []int
}

// HOT builds the router-like reference topology. Node layout: core ring
// with chords (low degree, center), gateways (each wired to two core
// nodes), access routers (each wired to one gateway), and hosts assigned
// to access routers by a Zipf-like skewed allocation — producing the
// HOT signature: k̄ ≈ 2, near-zero clustering, disassortative, and the
// highest-degree nodes at the periphery.
func HOT(cfg HOTConfig) (*graph.CSR, HOTRoles, error) {
	cfg = cfg.withDefaults()
	if cfg.CoreSize < 3 || cfg.Gateways < 1 || cfg.AccessRouters < 1 {
		return nil, HOTRoles{}, fmt.Errorf("datasets: HOT config too small: %+v", cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.CoreSize + cfg.Gateways + cfg.AccessRouters + cfg.Hosts
	g := graph.NewCSR(n)
	var roles HOTRoles

	// Core ring + chords.
	core := make([]int, cfg.CoreSize)
	for i := range core {
		core[i] = i
		roles.Core = append(roles.Core, i)
	}
	for i := range core {
		mustEdge(g, core[i], core[(i+1)%len(core)])
	}
	for i := 0; i < cfg.CoreSize/3; i++ {
		a := core[rng.Intn(len(core))]
		b := core[rng.Intn(len(core))]
		if a != b && !g.HasEdge(a, b) {
			mustEdge(g, a, b)
		}
	}

	// Gateways: each to one deterministic core node (balanced) plus the
	// extra-link budget adds redundancy later.
	gwBase := cfg.CoreSize
	for i := 0; i < cfg.Gateways; i++ {
		gw := gwBase + i
		roles.Gateway = append(roles.Gateway, gw)
		mustEdge(g, gw, core[i%len(core)])
	}

	// Access routers: each to one gateway.
	acBase := gwBase + cfg.Gateways
	for i := 0; i < cfg.AccessRouters; i++ {
		ac := acBase + i
		roles.Access = append(roles.Access, ac)
		mustEdge(g, ac, gwBase+i%cfg.Gateways)
	}

	// Hosts: skewed allocation over access routers — router i receives a
	// share ∝ 1/(i+1) (Zipf), so a handful of access routers become the
	// graph's highest-degree nodes.
	hostBase := acBase + cfg.AccessRouters
	weights := make([]float64, cfg.AccessRouters)
	var wSum float64
	for i := range weights {
		weights[i] = 1 / float64(i+1)
		wSum += weights[i]
	}
	for h := 0; h < cfg.Hosts; h++ {
		host := hostBase + h
		roles.Host = append(roles.Host, host)
		x := rng.Float64() * wSum
		idx := 0
		for x > weights[idx] && idx < len(weights)-1 {
			x -= weights[idx]
			idx++
		}
		mustEdge(g, host, acBase+idx)
	}

	// Redundant links: gateway–gateway and gateway–core, giving the
	// small cycle budget of the original HOT graph.
	for added := 0; added < cfg.ExtraLinks; {
		var a, b int
		if rng.Intn(2) == 0 {
			a = gwBase + rng.Intn(cfg.Gateways)
			b = gwBase + rng.Intn(cfg.Gateways)
		} else {
			a = gwBase + rng.Intn(cfg.Gateways)
			b = core[rng.Intn(len(core))]
		}
		if a == b || g.HasEdge(a, b) {
			continue
		}
		mustEdge(g, a, b)
		added++
	}
	return g, roles, nil
}

// PaperScaleHOT returns a configuration sized like the paper's HOT graph
// (939 nodes, 988 edges): 12 core + 48 gateways + 60 access + 819 hosts
// = 939 nodes; 938 tree edges + extras ≈ 988.
func PaperScaleHOT(seed int64) HOTConfig {
	return HOTConfig{
		Hosts:         819,
		AccessRouters: 60,
		Gateways:      48,
		CoreSize:      12,
		ExtraLinks:    36,
		Seed:          seed,
	}
}

func mustEdge(g *graph.CSR, u, v int) {
	if err := g.AddEdge(u, v); err != nil {
		panic("datasets: " + err.Error())
	}
}

// Paw returns the worked example graph from Section 3 of the paper: a
// triangle {0,1,2} with a pendant node 3 attached to node 2.
func Paw() *graph.CSR {
	g := graph.NewCSR(4)
	mustEdge(g, 0, 1)
	mustEdge(g, 1, 2)
	mustEdge(g, 0, 2)
	mustEdge(g, 2, 3)
	return g
}

// Petersen returns the Petersen graph (3-regular, girth 5), a standard
// metric-validation fixture.
func Petersen() *graph.CSR {
	g := graph.NewCSR(10)
	outer := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}}
	inner := [][2]int{{5, 7}, {7, 9}, {9, 6}, {6, 8}, {8, 5}}
	for _, e := range outer {
		mustEdge(g, e[0], e[1])
	}
	for _, e := range inner {
		mustEdge(g, e[0], e[1])
	}
	for i := 0; i < 5; i++ {
		mustEdge(g, i, i+5)
	}
	return g
}
