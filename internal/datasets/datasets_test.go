package datasets

import (
	"testing"

	"repro/internal/dk"
	"repro/internal/graph"
	"repro/internal/metrics"
)

func TestPaw(t *testing.T) {
	g := Paw()
	if g.N() != 4 || g.M() != 4 {
		t.Fatalf("paw: n=%d m=%d", g.N(), g.M())
	}
	p, err := dk.Extract(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Joint.Count[dk.NewDegPair(2, 3)] != 2 {
		t.Errorf("paper example P(2,3) = %d, want 2", p.Joint.Count[dk.NewDegPair(2, 3)])
	}
}

func TestPetersen(t *testing.T) {
	g := Petersen()
	if g.N() != 10 || g.M() != 15 {
		t.Fatalf("petersen: n=%d m=%d", g.N(), g.M())
	}
	for u := 0; u < 10; u++ {
		if g.Degree(u) != 3 {
			t.Errorf("degree(%d) = %d, want 3", u, g.Degree(u))
		}
	}
	if !graph.IsConnected(g.Static()) {
		t.Error("petersen disconnected")
	}
}

func TestHOTSignature(t *testing.T) {
	g, roles, err := HOT(PaperScaleHOT(1))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 939 {
		t.Errorf("n = %d, want 939", g.N())
	}
	if g.M() < 960 || g.M() > 1010 {
		t.Errorf("m = %d, want ≈ 988", g.M())
	}
	if !graph.IsConnected(g.Static()) {
		t.Fatal("HOT graph disconnected")
	}
	s := g.Static()
	kbar := s.AvgDegree()
	if kbar < 1.9 || kbar > 2.3 {
		t.Errorf("k̄ = %v, want ≈ 2.1", kbar)
	}
	// Near-tree: almost no clustering.
	if c := metrics.MeanClustering(s); c > 0.05 {
		t.Errorf("C̄ = %v, want ≈ 0", c)
	}
	// Disassortative.
	if r := metrics.Assortativity(s); r > -0.1 {
		t.Errorf("r = %v, want strongly negative", r)
	}
	// The HOT signature: the highest-degree nodes are access routers
	// (periphery), not core nodes.
	maxDeg, maxNode := 0, -1
	for u := 0; u < g.N(); u++ {
		if d := g.Degree(u); d > maxDeg {
			maxDeg, maxNode = d, u
		}
	}
	isAccess := false
	for _, a := range roles.Access {
		if a == maxNode {
			isAccess = true
			break
		}
	}
	if !isAccess {
		t.Errorf("highest-degree node %d (deg %d) is not an access router", maxNode, maxDeg)
	}
	// Core nodes stay low-degree.
	for _, c := range roles.Core {
		if g.Degree(c) > 12 {
			t.Errorf("core node %d has degree %d; core must stay low-degree", c, g.Degree(c))
		}
	}
}

func TestHOTDeterministicPerSeed(t *testing.T) {
	a, _, err := HOT(HOTConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := HOT(HOTConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Error("same seed produced different HOT graphs")
	}
	c, _, err := HOT(HOTConfig{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if a.Equal(c) {
		t.Error("different seeds produced identical HOT graphs")
	}
}

func TestHOTValidation(t *testing.T) {
	if _, _, err := HOT(HOTConfig{CoreSize: 2, Hosts: 10, Gateways: 1, AccessRouters: 1, ExtraLinks: 1}); err == nil {
		t.Error("degenerate core accepted")
	}
}

func TestSkitterSignature(t *testing.T) {
	g, err := Skitter(SkitterConfig{N: 900, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !graph.IsConnected(g.Static()) {
		t.Fatal("skitter-like graph disconnected")
	}
	s := g.Static()
	if g.N() < 700 {
		t.Errorf("GCC too small: %d of 900", g.N())
	}
	if r := metrics.Assortativity(s); r > -0.1 {
		t.Errorf("r = %v, want ≤ −0.1 (disassortative)", r)
	}
	if c := metrics.MeanClustering(s); c < 0.2 {
		t.Errorf("C̄ = %v, want ≥ 0.2 (strong clustering)", c)
	}
	// Power-law-ish: max degree far above mean.
	if maxd := s.MaxDegree(); float64(maxd) < 5*s.AvgDegree() {
		t.Errorf("max degree %d vs k̄ %v: tail too thin", maxd, s.AvgDegree())
	}
}

func TestSkitterDeterministicPerSeed(t *testing.T) {
	a, err := Skitter(SkitterConfig{N: 300, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Skitter(SkitterConfig{N: 300, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Error("same seed produced different skitter graphs")
	}
}
