package dk

import (
	"fmt"

	"repro/internal/subgraphs"
)

// The D_d distance metrics of Section 4.1.4: sums of squared differences
// between current and target subgraph counts of each class. Each D_d is
// non-negative and zero exactly when the two dK-distributions coincide.

// D0 is the squared difference of average degrees.
func D0(a, b *Profile) float64 {
	d := a.AvgDegree - b.AvgDegree
	return d * d
}

// D1 is the squared distance between degree distributions (count form).
func D1(a, b *DegreeDist) float64 {
	var sum float64
	for k, na := range a.Count {
		d := float64(na - b.Count[k])
		sum += d * d
	}
	for k, nb := range b.Count {
		if _, seen := a.Count[k]; !seen {
			sum += float64(nb) * float64(nb)
		}
	}
	return sum
}

// D2 is the paper's JDD distance Σ [m_cur(k1,k2) − m_tgt(k1,k2)]².
func D2(a, b *JDD) float64 {
	var sum float64
	for p, ma := range a.Count {
		d := float64(ma - b.Count[p])
		sum += d * d
	}
	for p, mb := range b.Count {
		if _, seen := a.Count[p]; !seen {
			sum += float64(mb) * float64(mb)
		}
	}
	return sum
}

// D3 is the paper's 3K distance: the sum of squared differences between
// current and target wedge counts plus the same for triangle counts.
func D3(a, b *subgraphs.Census) float64 {
	var sum float64
	for k, wa := range a.Wedges {
		d := float64(wa - b.Wedges[k])
		sum += d * d
	}
	for k, wb := range b.Wedges {
		if _, seen := a.Wedges[k]; !seen {
			sum += float64(wb) * float64(wb)
		}
	}
	for k, ta := range a.Triangles {
		d := float64(ta - b.Triangles[k])
		sum += d * d
	}
	for k, tb := range b.Triangles {
		if _, seen := a.Triangles[k]; !seen {
			sum += float64(tb) * float64(tb)
		}
	}
	return sum
}

// Distance returns D_d between two profiles, both of which must have been
// extracted to depth >= d.
func Distance(a, b *Profile, d int) (float64, error) {
	if a.D < d || b.D < d {
		return 0, fmt.Errorf("dk: profiles extracted to depths %d,%d; need >= %d", a.D, b.D, d)
	}
	switch d {
	case 0:
		return D0(a, b), nil
	case 1:
		return D1(a.Degrees, b.Degrees), nil
	case 2:
		return D2(a.Joint, b.Joint), nil
	case 3:
		return D3(a.Census, b.Census), nil
	default:
		return 0, fmt.Errorf("dk: unsupported distance depth %d", d)
	}
}
