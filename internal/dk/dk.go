// Package dk defines the dK-series data model of the paper: the
// dK-distributions for d = 0..3 (average degree, degree distribution,
// joint degree distribution, and wedge/triangle distributions), their
// extraction from graphs, the inclusion identities P_d → P_{d−1}, the
// D_d distance metrics used by targeting rewiring, and rescaling of 1K/2K
// distributions to arbitrary graph sizes (the paper's §6 future work).
//
// Distributions are stored as integer subgraph counts (n(k), m(k1,k2),
// wedge/triangle counts) rather than normalized probabilities, following
// the paper's own convention in its worked example ("values of all
// distributions P are the total numbers of corresponding subgraphs");
// probability forms are available through accessor methods.
package dk

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/subgraphs"
)

// DegreeDist is the 1K-distribution in count form: n(k) nodes of degree k
// out of N total.
type DegreeDist struct {
	N     int
	Count map[int]int
}

// NewDegreeDist builds the distribution of the given degree sequence.
func NewDegreeDist(seq []int) *DegreeDist {
	dd := &DegreeDist{N: len(seq), Count: make(map[int]int)}
	for _, k := range seq {
		dd.Count[k]++
	}
	return dd
}

// P returns P(k) = n(k)/N.
func (dd *DegreeDist) P(k int) float64 {
	if dd.N == 0 {
		return 0
	}
	return float64(dd.Count[k]) / float64(dd.N)
}

// Degrees returns the observed degrees in increasing order.
func (dd *DegreeDist) Degrees() []int {
	out := make([]int, 0, len(dd.Count))
	for k := range dd.Count {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// TotalDegree returns Σ k·n(k) (= 2M for a graph's degree distribution).
func (dd *DegreeDist) TotalDegree() int {
	t := 0
	for k, n := range dd.Count {
		t += k * n
	}
	return t
}

// AvgDegree returns Σ k·n(k) / N.
func (dd *DegreeDist) AvgDegree() float64 {
	if dd.N == 0 {
		return 0
	}
	return float64(dd.TotalDegree()) / float64(dd.N)
}

// MaxDegree returns the largest degree with a nonzero count.
func (dd *DegreeDist) MaxDegree() int {
	max := 0
	for k, n := range dd.Count {
		if n > 0 && k > max {
			max = k
		}
	}
	return max
}

// Sequence expands the distribution back into a degree sequence, sorted
// descending.
func (dd *DegreeDist) Sequence() []int {
	out := make([]int, 0, dd.N)
	for k, n := range dd.Count {
		for i := 0; i < n; i++ {
			out = append(out, k)
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}

// Clone returns a deep copy.
func (dd *DegreeDist) Clone() *DegreeDist {
	c := &DegreeDist{N: dd.N, Count: make(map[int]int, len(dd.Count))}
	for k, n := range dd.Count {
		c.Count[k] = n
	}
	return c
}

// DegPair is a canonical unordered degree pair (K1 <= K2).
type DegPair struct {
	K1, K2 int
}

// NewDegPair canonicalizes a degree pair.
func NewDegPair(a, b int) DegPair {
	if a > b {
		a, b = b, a
	}
	return DegPair{a, b}
}

// JDD is the 2K-distribution in count form: m(k1,k2) edges between nodes
// of degrees k1 and k2, out of M total edges.
type JDD struct {
	M     int
	Count map[DegPair]int
}

// NewJDD returns an empty joint degree distribution.
func NewJDD() *JDD {
	return &JDD{Count: make(map[DegPair]int)}
}

// Add records n edges of class (k1,k2).
func (j *JDD) Add(k1, k2, n int) {
	j.Count[NewDegPair(k1, k2)] += n
	j.M += n
}

// P returns the paper's normalized JDD value
// P(k1,k2) = m(k1,k2)·µ(k1,k2)/(2M), where µ is 2 when k1 = k2 and 1
// otherwise.
func (j *JDD) P(k1, k2 int) float64 {
	if j.M == 0 {
		return 0
	}
	mu := 1.0
	if k1 == k2 {
		mu = 2.0
	}
	return float64(j.Count[NewDegPair(k1, k2)]) * mu / (2 * float64(j.M))
}

// Pairs returns the observed degree pairs in lexicographic order.
func (j *JDD) Pairs() []DegPair {
	out := make([]DegPair, 0, len(j.Count))
	for p := range j.Count {
		out = append(out, p)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].K1 != out[b].K1 {
			return out[a].K1 < out[b].K1
		}
		return out[a].K2 < out[b].K2
	})
	return out
}

// DegreeDist derives the 1K-distribution implied by the JDD via the
// inclusion identity k·n(k) = Σ_{k'≠k} m(k,k') + 2·m(k,k). The node count
// N is the sum of the derived n(k).
//
// It returns an error if some class's endpoint total is not divisible by
// its degree, which means the counts did not come from a real graph.
func (j *JDD) DegreeDist() (*DegreeDist, error) {
	ends := make(map[int]int)
	for p, m := range j.Count {
		if p.K1 == p.K2 {
			ends[p.K1] += 2 * m
		} else {
			ends[p.K1] += m
			ends[p.K2] += m
		}
	}
	dd := &DegreeDist{Count: make(map[int]int, len(ends))}
	for k, e := range ends {
		if k <= 0 {
			return nil, fmt.Errorf("dk: JDD contains degree %d", k)
		}
		if e%k != 0 {
			return nil, fmt.Errorf("dk: JDD endpoint count %d for degree %d not divisible", e, k)
		}
		dd.Count[k] = e / k
		dd.N += e / k
	}
	return dd, nil
}

// Clone returns a deep copy.
func (j *JDD) Clone() *JDD {
	c := &JDD{M: j.M, Count: make(map[DegPair]int, len(j.Count))}
	for p, m := range j.Count {
		c.Count[p] = m
	}
	return c
}

// Profile is the dK-series summary of a graph up to depth D. Fields above
// the extracted depth are nil.
type Profile struct {
	D int // extraction depth, 0..3

	N, M      int
	AvgDegree float64 // P0

	Degrees *DegreeDist       // P1 (D >= 1)
	Joint   *JDD              // P2 (D >= 2)
	Census  *subgraphs.Census // P3 (D >= 3)
}

// Extract computes the dK-distributions of s up to depth d (0..3).
// It accepts any sorted-window adjacency (*graph.CSR or *graph.Static),
// so extraction runs directly on the working representation.
func Extract(s graph.Adjacency, d int) (*Profile, error) {
	if d < 0 || d > 3 {
		return nil, fmt.Errorf("dk: depth %d outside supported range 0..3", d)
	}
	p := &Profile{
		D:         d,
		N:         s.N(),
		M:         s.M(),
		AvgDegree: s.AvgDegree(),
	}
	if d >= 1 {
		seq := make([]int, s.N())
		for u := range seq {
			seq[u] = s.Degree(u)
		}
		p.Degrees = NewDegreeDist(seq)
	}
	if d >= 2 {
		p.Joint = NewJDD()
		for u := 0; u < s.N(); u++ {
			du := s.Degree(u)
			for _, v := range s.Neighbors(u) {
				if int(v) > u {
					p.Joint.Add(du, s.Degree(int(v)), 1)
				}
			}
		}
	}
	if d >= 3 {
		p.Census = subgraphs.Count(s)
	}
	return p, nil
}

// Validate checks the internal consistency of the profile: the inclusion
// identities tying each P_d to P_{d−1}.
//
//	P1 → P0: Σ n(k) = N and Σ k·n(k) = 2M
//	P2 → P1: the JDD-derived degree distribution equals Degrees
//	P3 → P2: Σ_k n(k)·C(k,2) = TotalWedges + 3·TotalTriangles
func (p *Profile) Validate() error {
	if p.D >= 1 {
		if p.Degrees == nil {
			return fmt.Errorf("dk: D=%d but Degrees is nil", p.D)
		}
		if p.Degrees.N != p.N {
			return fmt.Errorf("dk: Σ n(k) = %d, want N = %d", p.Degrees.N, p.N)
		}
		if got := p.Degrees.TotalDegree(); got != 2*p.M {
			return fmt.Errorf("dk: Σ k·n(k) = %d, want 2M = %d", got, 2*p.M)
		}
	}
	if p.D >= 2 {
		if p.Joint == nil {
			return fmt.Errorf("dk: D=%d but Joint is nil", p.D)
		}
		if p.Joint.M != p.M {
			return fmt.Errorf("dk: JDD edge total %d, want M = %d", p.Joint.M, p.M)
		}
		derived, err := p.Joint.DegreeDist()
		if err != nil {
			return err
		}
		for k, n := range p.Degrees.Count {
			if k > 0 && derived.Count[k] != n {
				return fmt.Errorf("dk: JDD-derived n(%d) = %d, want %d", k, derived.Count[k], n)
			}
		}
	}
	if p.D >= 3 {
		if p.Census == nil {
			return fmt.Errorf("dk: D=%d but Census is nil", p.D)
		}
		var pairs int64
		for k, n := range p.Degrees.Count {
			pairs += int64(n) * int64(k) * int64(k-1) / 2
		}
		got := p.Census.TotalWedges() + 3*p.Census.TotalTriangles()
		if pairs != got {
			return fmt.Errorf("dk: neighbor pairs %d != wedges+3·triangles %d", pairs, got)
		}
	}
	return nil
}

// Restrict returns a copy of p truncated to depth d <= p.D, exploiting the
// inclusion property of the series.
func (p *Profile) Restrict(d int) (*Profile, error) {
	if d < 0 || d > p.D {
		return nil, fmt.Errorf("dk: cannot restrict depth-%d profile to %d", p.D, d)
	}
	q := &Profile{D: d, N: p.N, M: p.M, AvgDegree: p.AvgDegree}
	if d >= 1 {
		q.Degrees = p.Degrees.Clone()
	}
	if d >= 2 {
		q.Joint = p.Joint.Clone()
	}
	if d >= 3 {
		q.Census = p.Census.Clone()
	}
	return q, nil
}
