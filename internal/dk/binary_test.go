package dk

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/graph"
)

// binTestGraph builds a reproducible random simple graph.
func binTestGraph(n, m int, seed int64) *graph.CSR {
	rng := rand.New(rand.NewSource(seed))
	g := graph.NewCSR(n)
	for g.M() < m {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		if err := g.AddEdge(u, v); err != nil {
			panic(err)
		}
	}
	return g
}

func TestProfileBinaryRoundTrip(t *testing.T) {
	g := binTestGraph(60, 150, 1)
	for d := 0; d <= 3; d++ {
		p, err := Extract(g, d)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteProfileBinary(&buf, p); err != nil {
			t.Fatalf("d=%d: encode: %v", d, err)
		}
		got, err := ReadProfileBinary(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("d=%d: decode: %v", d, err)
		}
		if !reflect.DeepEqual(normalize(got), normalize(p)) {
			t.Fatalf("d=%d: round trip changed the profile", d)
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("d=%d: decoded profile invalid: %v", d, err)
		}
	}
}

// normalize strips empty-vs-nil map differences irrelevant to equality.
func normalize(p *Profile) *Profile {
	q := *p
	if q.Degrees != nil && len(q.Degrees.Count) == 0 {
		q.Degrees = &DegreeDist{N: q.Degrees.N}
	}
	return &q
}

// TestProfileBinaryCanonical: extraction order and map iteration cannot
// change the encoded bytes.
func TestProfileBinaryCanonical(t *testing.T) {
	g := binTestGraph(40, 90, 2)
	var prev []byte
	for i := 0; i < 5; i++ {
		p, err := Extract(g, 3)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteProfileBinary(&buf, p); err != nil {
			t.Fatal(err)
		}
		if prev != nil && !bytes.Equal(prev, buf.Bytes()) {
			t.Fatal("same profile encoded to different bytes")
		}
		prev = buf.Bytes()
	}
}

// TestProfileBinaryCorruption: single-byte flips and truncations are
// rejected.
func TestProfileBinaryCorruption(t *testing.T) {
	g := binTestGraph(30, 70, 3)
	p, err := Extract(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteProfileBinary(&buf, p); err != nil {
		t.Fatal(err)
	}
	enc := buf.Bytes()
	for i := 5; i < len(enc); i++ {
		mut := append([]byte(nil), enc...)
		mut[i] ^= 0x20
		if _, err := ReadProfileBinary(bytes.NewReader(mut)); err == nil {
			t.Fatalf("flip at byte %d accepted", i)
		}
	}
	for i := 0; i < len(enc); i++ {
		if _, err := ReadProfileBinary(bytes.NewReader(enc[:i])); err == nil {
			t.Fatalf("prefix of %d/%d bytes accepted", i, len(enc))
		}
	}
	if _, err := ReadProfileBinary(bytes.NewReader([]byte("XXXX\x01"))); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic: err=%v, want ErrCorrupt", err)
	}
}

// TestDistBinaryRejects: structural garbage in the sub-codecs is caught
// even when checksums are not in play.
func TestDistBinaryRejects(t *testing.T) {
	var dd DegreeDist
	// nClasses=2 with a zero gap on the second class: not strictly
	// increasing.
	if err := dd.UnmarshalBinary([]byte{4, 2, 1, 2, 0, 2}); err == nil {
		t.Fatal("non-increasing degree classes accepted")
	}
	var j JDD
	// One class with k2 < k1 after canonical check: k1=3 (gap 3), k2=1.
	if err := j.UnmarshalBinary([]byte{1, 3, 1, 1}); err == nil {
		t.Fatal("non-canonical JDD pair accepted")
	}
}
