package dk

import "sort"

// Graphical reports whether the degree sequence can be realized by a
// simple undirected graph, by the Erdős–Gallai theorem: with degrees
// sorted descending d1 >= ... >= dn, the sequence is graphical iff the sum
// is even and for every k
//
//	Σ_{i<=k} d_i  <=  k(k−1) + Σ_{i>k} min(d_i, k).
//
// The suffix sums are evaluated in O(n log n) total using a pointer sweep.
func Graphical(seq []int) bool {
	n := len(seq)
	if n == 0 {
		return true
	}
	d := make([]int, n)
	copy(d, seq)
	sort.Sort(sort.Reverse(sort.IntSlice(d)))
	if d[n-1] < 0 || d[0] >= n {
		return false
	}
	total := 0
	for _, x := range d {
		total += x
	}
	if total%2 != 0 {
		return false
	}
	// suffix[i] = Σ_{j >= i} d_j
	suffix := make([]int, n+1)
	for i := n - 1; i >= 0; i-- {
		suffix[i] = suffix[i+1] + d[i]
	}
	left := 0
	for k := 1; k <= n; k++ {
		left += d[k-1]
		// Σ_{i>k} min(d_i, k): entries d_i > k contribute k each; the rest
		// contribute themselves. Since d is sorted descending, find the
		// first index >= k (0-based) where d_i <= k.
		lo, hi := k, n
		for lo < hi {
			mid := (lo + hi) / 2
			if d[mid] > k {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		right := k*(k-1) + (lo-k)*k + suffix[lo]
		if left > right {
			return false
		}
	}
	return true
}

// GraphicalDist reports whether the degree distribution is graphical.
func GraphicalDist(dd *DegreeDist) bool {
	return Graphical(dd.Sequence())
}
