package dk

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/subgraphs"
)

func build(t *testing.T, n int, edges [][2]int) *graph.CSR {
	t.Helper()
	g := graph.NewCSR(n)
	for _, e := range edges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// paw returns the worked example from Section 3 of the paper: a triangle
// {0,1,2} with pendant node 3 attached to node 2.
func paw(t *testing.T) *graph.CSR {
	return build(t, 4, [][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}})
}

func randomGraph(rng *rand.Rand, n, m int) *graph.CSR {
	g := graph.NewCSR(n)
	for g.M() < m {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		if err := g.AddEdge(u, v); err != nil {
			panic(err)
		}
	}
	return g
}

func TestExtractPaperExample(t *testing.T) {
	g := paw(t)
	p, err := Extract(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p.N != 4 || p.M != 4 {
		t.Fatalf("N=%d M=%d, want 4,4", p.N, p.M)
	}
	if p.AvgDegree != 2 {
		t.Errorf("AvgDegree = %v, want 2", p.AvgDegree)
	}
	// 1K: one degree-1 node, two degree-2 nodes, one degree-3 node.
	for k, want := range map[int]int{1: 1, 2: 2, 3: 1} {
		if got := p.Degrees.Count[k]; got != want {
			t.Errorf("n(%d) = %d, want %d", k, got, want)
		}
	}
	// 2K: the paper's P(2,3)=2 plus P(2,2)=1 and P(1,3)=1.
	for pr, want := range map[DegPair]int{{2, 3}: 2, {2, 2}: 1, {1, 3}: 1} {
		if got := p.Joint.Count[pr]; got != want {
			t.Errorf("m(%d,%d) = %d, want %d", pr.K1, pr.K2, got, want)
		}
	}
	// 3K: two (1,3,2) wedges and one (2,2,3) triangle.
	if got := p.Census.Wedges[subgraphs.WedgeKey{KLo: 1, KCenter: 3, KHi: 2}]; got != 2 {
		t.Errorf("wedges(1,3,2) = %d, want 2", got)
	}
	if got := p.Census.Triangles[subgraphs.TriangleKey{K1: 2, K2: 2, K3: 3}]; got != 1 {
		t.Errorf("triangles(2,2,3) = %d, want 1", got)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestExtractDepthValidation(t *testing.T) {
	g := paw(t)
	if _, err := Extract(g, -1); err == nil {
		t.Error("depth -1 accepted")
	}
	if _, err := Extract(g, 4); err == nil {
		t.Error("depth 4 accepted")
	}
}

func TestExtractShallowDepths(t *testing.T) {
	g := paw(t)
	p0, err := Extract(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p0.Degrees != nil || p0.Joint != nil || p0.Census != nil {
		t.Error("depth-0 profile has deeper fields populated")
	}
	p1, err := Extract(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Degrees == nil || p1.Joint != nil {
		t.Error("depth-1 profile fields wrong")
	}
}

func TestValidateInclusionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(30)
		m := rng.Intn(n*(n-1)/2 + 1)
		g := randomGraph(rng, n, m)
		p, err := Extract(g, 3)
		if err != nil {
			return false
		}
		return p.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestJDDDegreeDistErrors(t *testing.T) {
	j := NewJDD()
	j.Add(3, 2, 1) // one 3-endpoint: not divisible by 3
	if _, err := j.DegreeDist(); err == nil {
		t.Error("inconsistent JDD accepted")
	}
	j2 := NewJDD()
	j2.Add(0, 2, 1)
	if _, err := j2.DegreeDist(); err == nil {
		t.Error("degree-0 JDD accepted")
	}
}

func TestJDDP(t *testing.T) {
	g := paw(t)
	p, _ := Extract(g, 2)
	// P(k1,k2) sums to 1 over canonical pairs with the µ weighting folded:
	// Σ_{k1<=k2} m·µ/(2m) = Σ m(k1,k2)/(2M)·µ; for the paw:
	// (1·2 + 2·1 + 1·1 + ... ) — just verify a couple of point values.
	if got := p.Joint.P(2, 3); math.Abs(got-2.0/8.0) > 1e-12 {
		t.Errorf("P(2,3) = %v, want 0.25", got)
	}
	if got := p.Joint.P(2, 2); math.Abs(got-2.0/8.0) > 1e-12 {
		t.Errorf("P(2,2) = %v, want 0.25 (µ=2)", got)
	}
	if got := p.Joint.P(9, 9); got != 0 {
		t.Errorf("P(9,9) = %v, want 0", got)
	}
}

func TestRestrict(t *testing.T) {
	g := paw(t)
	p, _ := Extract(g, 3)
	q, err := p.Restrict(1)
	if err != nil {
		t.Fatal(err)
	}
	if q.D != 1 || q.Joint != nil || q.Census != nil {
		t.Error("restricted profile retains deep fields")
	}
	if q.Degrees.N != p.Degrees.N {
		t.Error("restricted degree dist differs")
	}
	if _, err := p.Restrict(4); err == nil {
		t.Error("restrict beyond extracted depth accepted")
	}
	// Mutating the restriction must not affect the original.
	q.Degrees.Count[1] = 99
	if p.Degrees.Count[1] == 99 {
		t.Error("Restrict shares state with original")
	}
}

func TestDistancesZeroAndPositive(t *testing.T) {
	g := paw(t)
	h := build(t, 4, [][2]int{{0, 1}, {1, 2}, {2, 3}}) // path
	pg, _ := Extract(g, 3)
	ph, _ := Extract(h, 3)
	for d := 0; d <= 3; d++ {
		same, err := Distance(pg, pg, d)
		if err != nil {
			t.Fatal(err)
		}
		if same != 0 {
			t.Errorf("D%d(g,g) = %v, want 0", d, same)
		}
		diff, err := Distance(pg, ph, d)
		if err != nil {
			t.Fatal(err)
		}
		if diff <= 0 {
			t.Errorf("D%d(paw,path) = %v, want > 0", d, diff)
		}
	}
	if _, err := Distance(pg, ph, 4); err == nil {
		t.Error("distance depth 4 accepted")
	}
	shallow, _ := Extract(g, 1)
	if _, err := Distance(shallow, ph, 2); err == nil {
		t.Error("distance beyond extraction depth accepted")
	}
}

func TestDistanceSymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(20)
		g1 := randomGraph(rng, n, rng.Intn(n*(n-1)/2+1))
		g2 := randomGraph(rng, n, rng.Intn(n*(n-1)/2+1))
		p1, _ := Extract(g1, 3)
		p2, _ := Extract(g2, 3)
		for d := 0; d <= 3; d++ {
			a, _ := Distance(p1, p2, d)
			b, _ := Distance(p2, p1, d)
			if math.Abs(a-b) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestGraphicalKnownCases(t *testing.T) {
	cases := []struct {
		seq  []int
		want bool
	}{
		{[]int{}, true},
		{[]int{0}, true},
		{[]int{1, 1}, true},
		{[]int{1}, false},             // odd sum
		{[]int{3, 3, 3, 3}, true},     // K4
		{[]int{4, 1, 1, 1, 1}, true},  // star
		{[]int{5, 1, 1, 1, 1}, false}, // degree >= n
		{[]int{3, 3, 1, 1}, false},    // Erdős–Gallai violation
		{[]int{2, 2, 2}, true},        // triangle
		{[]int{-1, 1}, false},
		{[]int{3, 2, 2, 2, 1}, true},
	}
	for _, tc := range cases {
		if got := Graphical(tc.seq); got != tc.want {
			t.Errorf("Graphical(%v) = %v, want %v", tc.seq, got, tc.want)
		}
	}
}

func TestGraphicalMatchesRealGraphsProperty(t *testing.T) {
	// Degree sequences extracted from actual graphs are always graphical.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		g := randomGraph(rng, n, rng.Intn(n*(n-1)/2+1))
		return Graphical(g.DegreeSequence())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestRescale1K(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(5)), 60, 150)
	p, _ := Extract(g, 1)
	for _, newN := range []int{10, 60, 200, 999} {
		r, err := Rescale1K(p.Degrees, newN)
		if err != nil {
			t.Fatal(err)
		}
		if r.N != newN {
			t.Errorf("rescaled N = %d, want %d", r.N, newN)
		}
		total := 0
		for _, c := range r.Count {
			total += c
		}
		if total != newN {
			t.Errorf("Σ n(k) = %d, want %d", total, newN)
		}
		if r.TotalDegree()%2 != 0 {
			t.Errorf("rescaled total degree odd at newN=%d", newN)
		}
		// Shape preserved: average degree within 25% at reasonable sizes.
		if newN >= 60 {
			if math.Abs(r.AvgDegree()-p.Degrees.AvgDegree()) > 0.25*p.Degrees.AvgDegree() {
				t.Errorf("avg degree drifted: %v vs %v", r.AvgDegree(), p.Degrees.AvgDegree())
			}
		}
	}
	if _, err := Rescale1K(p.Degrees, 0); err == nil {
		t.Error("rescale to 0 accepted")
	}
}

func TestRescale2K(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(11)), 50, 120)
	p, _ := Extract(g, 2)
	for _, newN := range []int{25, 50, 150} {
		r, err := Rescale2K(p.Joint, newN)
		if err != nil {
			t.Fatal(err)
		}
		dd, err := r.DegreeDist()
		if err != nil {
			t.Fatalf("rescaled JDD inconsistent at newN=%d: %v", newN, err)
		}
		if dd.N < newN/2 || dd.N > newN*2 {
			t.Errorf("implied N = %d, want near %d", dd.N, newN)
		}
	}
	if _, err := Rescale2K(p.Joint, -3); err == nil {
		t.Error("rescale to negative accepted")
	}
}

func TestRescale2KPropertyConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(40)
		g := randomGraph(rng, n, n+rng.Intn(2*n))
		p, _ := Extract(g, 2)
		newN := 5 + rng.Intn(300)
		r, err := Rescale2K(p.Joint, newN)
		if err != nil {
			return false
		}
		_, err = r.DegreeDist()
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDegreeDistSequenceRoundTrip(t *testing.T) {
	dd := NewDegreeDist([]int{3, 1, 2, 2, 1, 3, 3})
	seq := dd.Sequence()
	if len(seq) != 7 {
		t.Fatalf("sequence len %d", len(seq))
	}
	for i := 1; i < len(seq); i++ {
		if seq[i-1] < seq[i] {
			t.Fatal("sequence not descending")
		}
	}
	if dd2 := NewDegreeDist(seq); dd2.Count[3] != 3 || dd2.Count[2] != 2 || dd2.Count[1] != 2 {
		t.Errorf("round trip mismatch: %v", dd2.Count)
	}
	if dd.MaxDegree() != 3 {
		t.Errorf("MaxDegree = %d", dd.MaxDegree())
	}
}
