package dk

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/subgraphs"
)

// Binary profile format ("DKPB"): the on-disk encoding of an extracted
// dK-profile in the persistent artifact store. The container frames one
// length-prefixed section per distribution at or below the extraction
// depth, each encoded by its own codec (DegreeDist/JDD here, Census in
// internal/subgraphs), so a reader can skip sections it does not need and
// future depths can add sections without breaking old readers.
//
//	magic   "DKPB" (4 bytes)
//	version 0x01   (1 byte)
//	payload (CRC-32 protected from here):
//	  D          uvarint   extraction depth 0..3
//	  N          uvarint   node count
//	  M          uvarint   edge count
//	  avgDegree  8 bytes   IEEE-754 bits, little-endian
//	  if D >= 1: uvarint section length + DegreeDist.MarshalBinary bytes
//	  if D >= 2: uvarint section length + JDD.MarshalBinary bytes
//	  if D >= 3: uvarint section length + Census.MarshalBinary bytes
//	trailer: CRC-32 (IEEE) of the payload, 4 bytes big-endian
//
// All encodings are canonical (classes sorted by degree key, zero counts
// omitted), so equal profiles produce identical bytes.

var profileMagic = [4]byte{'D', 'K', 'P', 'B'}

const profileVersion = 1

// maxSectionBytes bounds a single distribution section; a length prefix
// beyond it is rejected before any allocation.
const maxSectionBytes = 1 << 30

// ErrCorrupt marks binary profile artifacts that fail structural
// validation or checksum verification.
var ErrCorrupt = errors.New("corrupt binary profile")

// MarshalBinary encodes the distribution as sorted (degree, count) records
// with the degrees delta-encoded:
//
//	N uvarint, nClasses uvarint,
//	per class in increasing k: gap uvarint (first k absolute, then k-prev,
//	both >= 1 after the first), count uvarint (>= 1)
func (dd *DegreeDist) MarshalBinary() ([]byte, error) {
	dst := binary.AppendUvarint(nil, uint64(dd.N))
	ks := dd.Degrees()
	nz := 0
	for _, k := range ks {
		if dd.Count[k] != 0 {
			nz++
		}
	}
	dst = binary.AppendUvarint(dst, uint64(nz))
	prev := 0
	for _, k := range ks {
		n := dd.Count[k]
		if n == 0 {
			continue
		}
		dst = binary.AppendUvarint(dst, uint64(k-prev))
		dst = binary.AppendUvarint(dst, uint64(n))
		prev = k
	}
	return dst, nil
}

// UnmarshalBinary decodes the encoding produced by MarshalBinary.
func (dd *DegreeDist) UnmarshalBinary(data []byte) error {
	d := profDecoder{buf: data}
	dd.N = d.count("node total")
	nc := d.count("degree classes")
	dd.Count = make(map[int]int, min(nc, 1<<16))
	prev := 0
	for i := 0; i < nc && d.err == nil; i++ {
		gap := d.count("degree gap")
		n := d.count("class count")
		if d.err != nil {
			break
		}
		if gap == 0 && i > 0 {
			return fmt.Errorf("dk: degree classes not strictly increasing")
		}
		if n <= 0 {
			return fmt.Errorf("dk: degree class count %d", n)
		}
		prev += gap
		dd.Count[prev] = n
	}
	if d.err != nil {
		return d.err
	}
	if len(d.buf) != 0 {
		return fmt.Errorf("dk: %d trailing bytes after degree distribution", len(d.buf))
	}
	return nil
}

// MarshalBinary encodes the JDD as sorted (k1, k2, count) records with k1
// delta-encoded across records and k2 delta-encoded within a k1 run:
//
//	nClasses uvarint,
//	per class in lexicographic (k1, k2) order:
//	  dk1 uvarint (k1 - prev k1),
//	  k2' uvarint (k2 absolute when dk1 > 0 or first record,
//	               else k2 - prev k2, >= 1),
//	  count uvarint (>= 1)
//
// The edge total M is not stored; it is recomputed from the classes on
// decode, mirroring the JSON codec.
func (j *JDD) MarshalBinary() ([]byte, error) {
	pairs := j.Pairs()
	nz := 0
	for _, p := range pairs {
		if j.Count[p] != 0 {
			nz++
		}
	}
	dst := binary.AppendUvarint(nil, uint64(nz))
	prevK1, prevK2 := 0, 0
	first := true
	for _, p := range pairs {
		m := j.Count[p]
		if m == 0 {
			continue
		}
		dk1 := p.K1 - prevK1
		dst = binary.AppendUvarint(dst, uint64(dk1))
		if first || dk1 > 0 {
			dst = binary.AppendUvarint(dst, uint64(p.K2))
		} else {
			dst = binary.AppendUvarint(dst, uint64(p.K2-prevK2))
		}
		dst = binary.AppendUvarint(dst, uint64(m))
		prevK1, prevK2 = p.K1, p.K2
		first = false
	}
	return dst, nil
}

// UnmarshalBinary decodes the encoding produced by MarshalBinary,
// recomputing the edge total from the classes.
func (j *JDD) UnmarshalBinary(data []byte) error {
	d := profDecoder{buf: data}
	nc := d.count("JDD classes")
	j.M = 0
	j.Count = make(map[DegPair]int, min(nc, 1<<16))
	prevK1, prevK2 := 0, 0
	for i := 0; i < nc && d.err == nil; i++ {
		dk1 := d.count("JDD k1 gap")
		k2v := d.count("JDD k2")
		m := d.count("JDD class count")
		if d.err != nil {
			break
		}
		k1 := prevK1 + dk1
		k2 := k2v
		if i > 0 && dk1 == 0 {
			if k2v == 0 {
				return fmt.Errorf("dk: JDD classes not strictly increasing")
			}
			k2 = prevK2 + k2v
		}
		if k2 < k1 {
			return fmt.Errorf("dk: JDD class (%d,%d) not canonical", k1, k2)
		}
		if m <= 0 {
			return fmt.Errorf("dk: JDD class (%d,%d) count %d", k1, k2, m)
		}
		j.Count[DegPair{k1, k2}] = m
		j.M += m
		prevK1, prevK2 = k1, k2
	}
	if d.err != nil {
		return d.err
	}
	if len(d.buf) != 0 {
		return fmt.Errorf("dk: %d trailing bytes after JDD", len(d.buf))
	}
	return nil
}

// WriteProfileBinary writes p in the binary profile format.
func WriteProfileBinary(w io.Writer, p *Profile) error {
	if p.D < 0 || p.D > 3 {
		return fmt.Errorf("dk: profile depth %d outside 0..3", p.D)
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(profileMagic[:]); err != nil {
		return err
	}
	if err := bw.WriteByte(profileVersion); err != nil {
		return err
	}
	var crc uint32
	emit := func(p []byte) error {
		crc = crc32.Update(crc, crc32.IEEETable, p)
		_, err := bw.Write(p)
		return err
	}
	var scratch [binary.MaxVarintLen64]byte
	emitUvarint := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		return emit(scratch[:n])
	}
	if err := emitUvarint(uint64(p.D)); err != nil {
		return err
	}
	if err := emitUvarint(uint64(p.N)); err != nil {
		return err
	}
	if err := emitUvarint(uint64(p.M)); err != nil {
		return err
	}
	var avg [8]byte
	binary.LittleEndian.PutUint64(avg[:], math.Float64bits(p.AvgDegree))
	if err := emit(avg[:]); err != nil {
		return err
	}
	sections := make([][]byte, 0, 3)
	if p.D >= 1 {
		if p.Degrees == nil {
			return fmt.Errorf("dk: depth-%d profile without degrees", p.D)
		}
		b, _ := p.Degrees.MarshalBinary()
		sections = append(sections, b)
	}
	if p.D >= 2 {
		if p.Joint == nil {
			return fmt.Errorf("dk: depth-%d profile without joint", p.D)
		}
		b, _ := p.Joint.MarshalBinary()
		sections = append(sections, b)
	}
	if p.D >= 3 {
		if p.Census == nil {
			return fmt.Errorf("dk: depth-%d profile without census", p.D)
		}
		sections = append(sections, p.Census.AppendBinary(nil))
	}
	for _, sec := range sections {
		if err := emitUvarint(uint64(len(sec))); err != nil {
			return err
		}
		if err := emit(sec); err != nil {
			return err
		}
	}
	var trailer [4]byte
	binary.BigEndian.PutUint32(trailer[:], crc)
	if _, err := bw.Write(trailer[:]); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadProfileBinary decodes a profile written by WriteProfileBinary,
// verifying the payload checksum and the structural invariants the JSON
// decoder enforces (sections present up to the stored depth). Use
// Profile.Validate for the full inclusion-identity check.
func ReadProfileBinary(r io.Reader) (*Profile, error) {
	br := bufio.NewReader(r)
	var hdr [5]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, pcorruptf("magic: %v", err)
	}
	if [4]byte(hdr[:4]) != profileMagic {
		return nil, pcorruptf("bad magic %q", hdr[:4])
	}
	if hdr[4] != profileVersion {
		return nil, pcorruptf("unsupported version %d", hdr[4])
	}
	c := &crcByteReader{r: br}
	depth, err := readUvarintInt(c, "depth")
	if err != nil {
		return nil, err
	}
	if depth > 3 {
		return nil, pcorruptf("depth %d outside 0..3", depth)
	}
	n, err := readUvarintInt(c, "node count")
	if err != nil {
		return nil, err
	}
	m, err := readUvarintInt(c, "edge count")
	if err != nil {
		return nil, err
	}
	var avg [8]byte
	if err := c.readFull(avg[:]); err != nil {
		return nil, pcorruptf("avg degree: %v", err)
	}
	p := &Profile{
		D: depth, N: n, M: m,
		AvgDegree: math.Float64frombits(binary.LittleEndian.Uint64(avg[:])),
	}
	if depth >= 1 {
		sec, err := readSection(c)
		if err != nil {
			return nil, err
		}
		p.Degrees = &DegreeDist{}
		if err := p.Degrees.UnmarshalBinary(sec); err != nil {
			return nil, fmt.Errorf("dk: %w: degrees: %v", ErrCorrupt, err)
		}
	}
	if depth >= 2 {
		sec, err := readSection(c)
		if err != nil {
			return nil, err
		}
		p.Joint = NewJDD()
		if err := p.Joint.UnmarshalBinary(sec); err != nil {
			return nil, fmt.Errorf("dk: %w: joint: %v", ErrCorrupt, err)
		}
	}
	if depth >= 3 {
		sec, err := readSection(c)
		if err != nil {
			return nil, err
		}
		p.Census = subgraphs.NewCensus()
		if err := p.Census.UnmarshalBinary(sec); err != nil {
			return nil, fmt.Errorf("dk: %w: census: %v", ErrCorrupt, err)
		}
	}
	var trailer [4]byte
	if _, err := io.ReadFull(br, trailer[:]); err != nil {
		return nil, pcorruptf("checksum trailer: %v", err)
	}
	if got := binary.BigEndian.Uint32(trailer[:]); got != c.crc {
		return nil, pcorruptf("checksum mismatch: payload %08x, trailer %08x", c.crc, got)
	}
	return p, nil
}

// readSection reads one length-prefixed distribution section. The buffer
// grows in chunks, so a forged length cannot force a large allocation.
func readSection(c *crcByteReader) ([]byte, error) {
	ln, err := binary.ReadUvarint(c)
	if err != nil {
		return nil, pcorruptf("section length: %v", err)
	}
	if ln > maxSectionBytes {
		return nil, pcorruptf("section length %d exceeds %d", ln, maxSectionBytes)
	}
	buf := make([]byte, 0, min(int(ln), 1<<20))
	var chunk [64 * 1024]byte
	for remaining := int(ln); remaining > 0; {
		step := min(remaining, len(chunk))
		if err := c.readFull(chunk[:step]); err != nil {
			return nil, pcorruptf("section body: %v", err)
		}
		buf = append(buf, chunk[:step]...)
		remaining -= step
	}
	return buf, nil
}

// readUvarintInt reads a uvarint bounded to int32, the width every profile
// cardinality fits in.
func readUvarintInt(c *crcByteReader, what string) (int, error) {
	v, err := binary.ReadUvarint(c)
	if err != nil {
		return 0, pcorruptf("%s: %v", what, err)
	}
	if v > math.MaxInt32 {
		return 0, pcorruptf("%s %d exceeds int32", what, v)
	}
	return int(v), nil
}

func pcorruptf(format string, args ...any) error {
	return fmt.Errorf("dk: %w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// crcByteReader reads from a buffered reader while accumulating the
// payload CRC.
type crcByteReader struct {
	r   *bufio.Reader
	crc uint32
}

func (c *crcByteReader) ReadByte() (byte, error) {
	b, err := c.r.ReadByte()
	if err != nil {
		return 0, err
	}
	one := [1]byte{b}
	c.crc = crc32.Update(c.crc, crc32.IEEETable, one[:])
	return b, nil
}

func (c *crcByteReader) readFull(p []byte) error {
	if _, err := io.ReadFull(c.r, p); err != nil {
		return err
	}
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p)
	return nil
}

// profDecoder reads uvarints from a byte slice with sticky error handling.
type profDecoder struct {
	buf []byte
	err error
}

func (d *profDecoder) count(what string) int {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.err = fmt.Errorf("dk: truncated %s", what)
		return 0
	}
	d.buf = d.buf[n:]
	if v > uint64(int(^uint(0)>>1)) {
		d.err = fmt.Errorf("dk: %s %d overflows int", what, v)
		return 0
	}
	return int(v)
}
