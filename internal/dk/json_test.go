package dk

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/graph"
)

// jsonFixtureGraph builds a small irregular graph with nontrivial wedge
// and triangle structure for codec tests.
func jsonFixtureGraph(t *testing.T) *graph.CSR {
	t.Helper()
	g := graph.NewCSR(7)
	edges := [][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 2}, {5, 6}}
	for _, e := range edges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestProfileJSONRoundTrip(t *testing.T) {
	g := jsonFixtureGraph(t)
	for d := 0; d <= 3; d++ {
		p, err := Extract(g, d)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(p)
		if err != nil {
			t.Fatalf("d=%d: marshal: %v", d, err)
		}
		var q Profile
		if err := json.Unmarshal(b, &q); err != nil {
			t.Fatalf("d=%d: unmarshal: %v", d, err)
		}
		if err := q.Validate(); err != nil {
			t.Fatalf("d=%d: round-tripped profile fails validation: %v", d, err)
		}
		dist, err := Distance(p, &q, d)
		if err != nil {
			t.Fatal(err)
		}
		if dist != 0 {
			t.Fatalf("d=%d: D_%d(original, round-tripped) = %v, want 0", d, d, dist)
		}
	}
}

func TestProfileJSONStable(t *testing.T) {
	// Map-backed distributions iterate in random order; the codec must
	// still produce identical bytes across marshals and across
	// separately-extracted copies of the same graph.
	g := jsonFixtureGraph(t)
	var prev []byte
	for i := 0; i < 5; i++ {
		p, err := Extract(g, 3)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil && !bytes.Equal(prev, b) {
			t.Fatalf("marshal %d produced different bytes:\n%s\nvs\n%s", i, prev, b)
		}
		prev = b
	}
}

func TestProfileJSONSortedClasses(t *testing.T) {
	g := jsonFixtureGraph(t)
	p, err := Extract(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	s := string(b)
	// Degree classes must appear in increasing k order.
	if strings.Index(s, `"k":1`) > strings.Index(s, `"k":2`) {
		t.Fatalf("degree classes not sorted: %s", s)
	}
	for _, field := range []string{`"d":`, `"avg_degree":`, `"degrees":`, `"joint":`, `"census":`, `"wedges":`, `"triangles":`} {
		if !strings.Contains(s, field) {
			t.Fatalf("encoding missing %s: %s", field, s)
		}
	}
}

func TestProfileJSONDepthConsistency(t *testing.T) {
	cases := []string{
		`{"d":4,"n":1,"m":0,"avg_degree":0}`,
		`{"d":-1,"n":1,"m":0,"avg_degree":0}`,
		`{"d":1,"n":1,"m":0,"avg_degree":0}`,                                                           // degrees missing
		`{"d":2,"n":1,"m":0,"avg_degree":0,"degrees":{"n":1,"classes":[]}}`,                            // joint missing
		`{"d":1,"n":2,"m":0,"avg_degree":0,"degrees":{"n":2,"classes":[{"k":0,"n":1},{"k":0,"n":1}]}}`, // dup class
	}
	for _, in := range cases {
		var p Profile
		if err := json.Unmarshal([]byte(in), &p); err == nil {
			t.Fatalf("invalid profile %s decoded without error", in)
		}
	}
}

func TestJDDJSONRecomputesTotal(t *testing.T) {
	// A hand-written JDD with a wrong "m" total gets the total recomputed
	// from its classes.
	in := `{"m":999,"classes":[{"k1":2,"k2":1,"m":3},{"k1":2,"k2":2,"m":1}]}`
	var j JDD
	if err := json.Unmarshal([]byte(in), &j); err != nil {
		t.Fatal(err)
	}
	if j.M != 4 {
		t.Fatalf("M = %d, want 4 (recomputed)", j.M)
	}
	// Pair (2,1) must have been canonicalized to (1,2).
	if j.Count[DegPair{1, 2}] != 3 {
		t.Fatalf("canonicalization lost class (1,2): %+v", j.Count)
	}
}

func TestProfileJSONFromRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		g := graph.NewCSR(20)
		for i := 0; i < 40; i++ {
			u, v := rng.Intn(20), rng.Intn(20)
			if u != v && !g.HasEdge(u, v) {
				if err := g.AddEdge(u, v); err != nil {
					t.Fatal(err)
				}
			}
		}
		p, err := Extract(g, 3)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		var q Profile
		if err := json.Unmarshal(b, &q); err != nil {
			t.Fatal(err)
		}
		if err := q.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}
