package dk

import (
	"fmt"
	"sort"
)

// Rescaling of dK-distributions to arbitrary target sizes is listed as
// future work in Section 6 of the paper ("appropriate strategies of
// rescaling the dK-distributions to arbitrary graph sizes"). The
// implementations here use largest-remainder apportionment so the rescaled
// distributions are exact integer count forms with the requested totals,
// followed by small repairs (parity, divisibility) so that the standard
// generators accept them.

// Rescale1K returns a degree distribution with the same shape as dd but
// newN nodes. Class sizes are apportioned by largest remainder; the total
// degree is then made even (a prerequisite for stub matching) by moving
// one node from the smallest occupied class k to class k+1 if necessary.
func Rescale1K(dd *DegreeDist, newN int) (*DegreeDist, error) {
	if newN <= 0 {
		return nil, fmt.Errorf("dk: rescale to non-positive size %d", newN)
	}
	if dd.N == 0 {
		return nil, fmt.Errorf("dk: rescale of empty distribution")
	}
	out := &DegreeDist{N: newN, Count: make(map[int]int)}
	apportion(dd.Count, dd.N, newN, out.Count, intLess)
	if out.TotalDegree()%2 != 0 {
		ks := out.Degrees()
		k := ks[0]
		out.Count[k]--
		if out.Count[k] == 0 {
			delete(out.Count, k)
		}
		out.Count[k+1]++
	}
	return out, nil
}

// Rescale2K returns a JDD rescaled so that the implied node count is
// approximately newN: edge-class counts are apportioned to
// M' = round(M·newN/N) by largest remainder, where N is the node total of
// the JDD's implied degree distribution. Endpoint divisibility is then
// repaired per degree class by shifting surplus endpoints into the
// (1, k) class, so DegreeDist() succeeds on the result.
func Rescale2K(j *JDD, newN int) (*JDD, error) {
	if newN <= 0 {
		return nil, fmt.Errorf("dk: rescale to non-positive size %d", newN)
	}
	dd, err := j.DegreeDist()
	if err != nil {
		return nil, err
	}
	if dd.N == 0 || j.M == 0 {
		return nil, fmt.Errorf("dk: rescale of empty JDD")
	}
	newM := int(float64(j.M)*float64(newN)/float64(dd.N) + 0.5)
	if newM < 1 {
		newM = 1
	}
	out := NewJDD()
	counts := make(map[DegPair]int, len(j.Count))
	apportion(j.Count, j.M, newM, counts, pairLess)
	for p, m := range counts {
		if m > 0 {
			out.Add(p.K1, p.K2, m)
		}
	}
	repairDivisibility(out)
	return out, nil
}

// repairDivisibility nudges a JDD so every degree class has an endpoint
// count divisible by its degree. Surplus endpoints of degree k (ends(k)
// mod k of them) are re-typed as degree-1 endpoints: r edges are moved
// from the most populous (k, k') class into (1, k'). Degree-1 endpoints
// are always consistent, so one pass suffices for every k > 1.
func repairDivisibility(j *JDD) {
	ends := make(map[int]int)
	for p, m := range j.Count {
		if p.K1 == p.K2 {
			ends[p.K1] += 2 * m
		} else {
			ends[p.K1] += m
			ends[p.K2] += m
		}
	}
	degrees := make([]int, 0, len(ends))
	for k := range ends {
		degrees = append(degrees, k)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(degrees)))
	for _, k := range degrees {
		if k <= 1 {
			continue
		}
		r := ends[k] % k
		for r > 0 {
			// Find the class holding the most k-endpoints, breaking count
			// ties by pair order for determinism.
			var best DegPair
			bestCount := 0
			for p, m := range j.Count {
				if p.K1 != k && p.K2 != k {
					continue
				}
				if m > bestCount || (m == bestCount && bestCount > 0 && pairLess(p, best)) {
					best, bestCount = p, m
				}
			}
			if bestCount == 0 {
				break // nothing to repair; DegreeDist will report the issue
			}
			// Re-type exactly one k-endpoint of one edge in the class as a
			// degree-1 endpoint: (k,k') → (1,k'), and (k,k) → (1,k). Each
			// move removes exactly one k-endpoint, so r decrements cleanly
			// even when only (k,k) classes remain.
			other := best.K1
			if other == k {
				other = best.K2
			}
			j.Count[best]--
			if j.Count[best] == 0 {
				delete(j.Count, best)
			}
			j.Count[NewDegPair(1, other)]++
			r--
			ends[k]--
			ends[1]++
		}
	}
}

// apportion distributes newTotal among the keys of src proportionally to
// their counts (which sum to srcTotal), using the largest-remainder
// method, writing results into dst. Keys may receive zero. Remainder ties
// are broken by the provided key ordering so results are deterministic
// regardless of map iteration order.
func apportion[K comparable](src map[K]int, srcTotal, newTotal int, dst map[K]int, keyLess func(a, b K) bool) {
	type rem struct {
		key  K
		frac float64
	}
	rems := make([]rem, 0, len(src))
	assigned := 0
	for k, c := range src {
		quota := float64(c) * float64(newTotal) / float64(srcTotal)
		base := int(quota)
		dst[k] = base
		assigned += base
		rems = append(rems, rem{k, quota - float64(base)})
	}
	sort.Slice(rems, func(i, j int) bool {
		if rems[i].frac != rems[j].frac {
			return rems[i].frac > rems[j].frac
		}
		return keyLess(rems[i].key, rems[j].key)
	})
	for i := 0; assigned < newTotal && i < len(rems); i++ {
		dst[rems[i].key]++
		assigned++
	}
	// Guard against pathological rounding: dump any remaining deficit on
	// the first (largest-remainder) class.
	if assigned < newTotal && len(rems) > 0 {
		dst[rems[0].key] += newTotal - assigned
	}
	for k, v := range dst {
		if v == 0 {
			delete(dst, k)
		}
	}
}

func intLess(a, b int) bool { return a < b }

func pairLess(a, b DegPair) bool {
	if a.K1 != b.K1 {
		return a.K1 < b.K1
	}
	return a.K2 < b.K2
}
