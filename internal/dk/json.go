package dk

import (
	"encoding/json"
	"fmt"

	"repro/internal/subgraphs"
)

// The JSON forms of the dK data model are stable: map-backed distributions
// marshal as arrays of class records sorted by degree key, so the same
// profile always produces the same bytes. The HTTP service exposes these
// encodings on its /v1/extract and /v1/compare responses; they are also a
// durable on-disk format for extracted profiles.

// degreeClassJSON is one degree class of a DegreeDist on the wire.
type degreeClassJSON struct {
	K int `json:"k"`
	N int `json:"n"`
}

// degreeDistJSON is the wire form of DegreeDist.
type degreeDistJSON struct {
	N       int               `json:"n"`
	Classes []degreeClassJSON `json:"classes"`
}

// MarshalJSON encodes the distribution as {"n": N, "classes": [{k, n}…]}
// with classes sorted by increasing degree; zero-count classes are
// omitted, so the encoding is canonical.
func (dd *DegreeDist) MarshalJSON() ([]byte, error) {
	out := degreeDistJSON{N: dd.N, Classes: []degreeClassJSON{}}
	for _, k := range dd.Degrees() {
		if n := dd.Count[k]; n != 0 {
			out.Classes = append(out.Classes, degreeClassJSON{K: k, N: n})
		}
	}
	return json.Marshal(out)
}

// UnmarshalJSON decodes the encoding produced by MarshalJSON and rejects
// duplicate degree classes.
func (dd *DegreeDist) UnmarshalJSON(b []byte) error {
	var in degreeDistJSON
	if err := json.Unmarshal(b, &in); err != nil {
		return err
	}
	dd.N = in.N
	dd.Count = make(map[int]int, len(in.Classes))
	for _, c := range in.Classes {
		if _, dup := dd.Count[c.K]; dup {
			return fmt.Errorf("dk: duplicate degree class k=%d in JSON", c.K)
		}
		if c.N != 0 {
			dd.Count[c.K] = c.N
		}
	}
	return nil
}

// edgeClassJSON is one (k1,k2) edge class of a JDD on the wire.
type edgeClassJSON struct {
	K1 int `json:"k1"`
	K2 int `json:"k2"`
	M  int `json:"m"`
}

// jddJSON is the wire form of JDD.
type jddJSON struct {
	M       int             `json:"m"`
	Classes []edgeClassJSON `json:"classes"`
}

// MarshalJSON encodes the JDD as {"m": M, "classes": [{k1, k2, m}…]} in
// lexicographic (k1,k2) order with zero-count classes omitted.
func (j *JDD) MarshalJSON() ([]byte, error) {
	out := jddJSON{M: j.M, Classes: []edgeClassJSON{}}
	for _, p := range j.Pairs() {
		if m := j.Count[p]; m != 0 {
			out.Classes = append(out.Classes, edgeClassJSON{K1: p.K1, K2: p.K2, M: m})
		}
	}
	return json.Marshal(out)
}

// UnmarshalJSON decodes the encoding produced by MarshalJSON. Pairs are
// re-canonicalized (k1 <= k2) on the way in; duplicates are rejected. The
// edge total M is recomputed from the classes, so inconsistent totals in
// hand-written JSON cannot enter the data model.
func (j *JDD) UnmarshalJSON(b []byte) error {
	var in jddJSON
	if err := json.Unmarshal(b, &in); err != nil {
		return err
	}
	j.M = 0
	j.Count = make(map[DegPair]int, len(in.Classes))
	for _, c := range in.Classes {
		p := NewDegPair(c.K1, c.K2)
		if _, dup := j.Count[p]; dup {
			return fmt.Errorf("dk: duplicate JDD class (%d,%d) in JSON", p.K1, p.K2)
		}
		if c.M != 0 {
			j.Count[p] = c.M
			j.M += c.M
		}
	}
	return nil
}

// profileJSON is the wire form of Profile.
type profileJSON struct {
	D         int               `json:"d"`
	N         int               `json:"n"`
	M         int               `json:"m"`
	AvgDegree float64           `json:"avg_degree"`
	Degrees   *DegreeDist       `json:"degrees,omitempty"`
	Joint     *JDD              `json:"joint,omitempty"`
	Census    *subgraphs.Census `json:"census,omitempty"`
}

// MarshalJSON encodes the profile with its distributions in the stable
// sorted-class forms; distributions above the extraction depth are
// omitted.
func (p *Profile) MarshalJSON() ([]byte, error) {
	return json.Marshal(profileJSON{
		D: p.D, N: p.N, M: p.M, AvgDegree: p.AvgDegree,
		Degrees: p.Degrees, Joint: p.Joint, Census: p.Census,
	})
}

// UnmarshalJSON decodes a profile and checks structural consistency: the
// depth must be 0..3 and each distribution at or below the depth must be
// present. Use Validate for the full inclusion-identity check.
func (p *Profile) UnmarshalJSON(b []byte) error {
	var in profileJSON
	if err := json.Unmarshal(b, &in); err != nil {
		return err
	}
	if in.D < 0 || in.D > 3 {
		return fmt.Errorf("dk: profile depth %d outside 0..3", in.D)
	}
	if in.D >= 1 && in.Degrees == nil {
		return fmt.Errorf("dk: profile depth %d without degrees", in.D)
	}
	if in.D >= 2 && in.Joint == nil {
		return fmt.Errorf("dk: profile depth %d without joint", in.D)
	}
	if in.D >= 3 && in.Census == nil {
		return fmt.Errorf("dk: profile depth %d without census", in.D)
	}
	p.D, p.N, p.M, p.AvgDegree = in.D, in.N, in.M, in.AvgDegree
	p.Degrees, p.Joint, p.Census = in.Degrees, in.Joint, in.Census
	return nil
}
