package metrics

import (
	"math/rand"
	"testing"
)

// TestSummarizeAutoSampleBoundary pins the automatic exact→sampled
// distance switch exactly at AutoSampleThreshold: at or below the
// threshold Summarize stays exact, above it (with an Rng) it produces
// the same estimate as an explicit SampledDistances call with the
// automatic source budget, and every opt-out keeps the exact pass.
func TestSummarizeAutoSampleBoundary(t *testing.T) {
	old := AutoSampleThreshold
	AutoSampleThreshold = 60
	defer func() { AutoSampleThreshold = old }()

	rng := rand.New(rand.NewSource(5))
	below := connectedRandom(rand.New(rand.NewSource(1)), 60, 30) // N == threshold
	above := connectedRandom(rand.New(rand.NewSource(1)), 61, 30) // N == threshold+1

	exactBelow := Distances(below).Mean()
	exactAbove := Distances(above).Mean()

	// At the threshold: exact, Rng or not.
	got, err := Summarize(below, SummaryOptions{Rng: rand.New(rand.NewSource(5))})
	if err != nil {
		t.Fatal(err)
	}
	if got.DBar != exactBelow {
		t.Fatalf("N == threshold: DBar %v, want exact %v", got.DBar, exactBelow)
	}

	// One past the threshold with an Rng: sampled, reproducing an explicit
	// SampledDistances call with the automatic budget and the same seed.
	got, err = Summarize(above, SummaryOptions{Rng: rand.New(rand.NewSource(5))})
	if err != nil {
		t.Fatal(err)
	}
	want := SampledDistances(above, AutoSampleSources, rand.New(rand.NewSource(5))).Mean()
	if got.DBar != want {
		t.Fatalf("N > threshold: DBar %v, want sampled %v", got.DBar, want)
	}

	// Opt-outs: ExactDistances, a negative DistanceSources, and a missing
	// Rng all keep the exact pass above the threshold.
	for name, opt := range map[string]SummaryOptions{
		"ExactDistances":  {ExactDistances: true, Rng: rng},
		"negative source": {DistanceSources: -1, Rng: rng},
		"nil rng":         {},
	} {
		got, err = Summarize(above, opt)
		if err != nil {
			t.Fatal(err)
		}
		if got.DBar != exactAbove {
			t.Fatalf("%s: DBar %v, want exact %v", name, got.DBar, exactAbove)
		}
	}

	// Explicit DistanceSources still means exactly that many sources.
	got, err = Summarize(above, SummaryOptions{DistanceSources: 7, Rng: rand.New(rand.NewSource(9))})
	if err != nil {
		t.Fatal(err)
	}
	want = SampledDistances(above, 7, rand.New(rand.NewSource(9))).Mean()
	if got.DBar != want {
		t.Fatalf("explicit sources: DBar %v, want %v", got.DBar, want)
	}

	// AutoBetweenness switches on the same boundary.
	bcAuto := AutoBetweenness(above, rand.New(rand.NewSource(3)))
	bcWant := SampledBetweenness(above, AutoSampleSources, rand.New(rand.NewSource(3)))
	for i := range bcAuto {
		if bcAuto[i] != bcWant[i] {
			t.Fatalf("AutoBetweenness[%d] = %v, want sampled %v", i, bcAuto[i], bcWant[i])
		}
	}
	if bc := AutoBetweenness(below, rand.New(rand.NewSource(3)))[0]; bc != Betweenness(below)[0] {
		t.Fatalf("AutoBetweenness below threshold should be exact")
	}
}
