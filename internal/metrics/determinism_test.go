package metrics

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/parallel"
)

// testGraph builds a connected pseudo-random graph: a ring (guaranteeing
// connectivity) plus random chords. Deterministic for a given seed.
func testGraph(t *testing.T, n, chords int, seed int64) *graph.Static {
	t.Helper()
	g := graph.NewCSR(n)
	for i := 0; i < n; i++ {
		if err := g.AddEdge(i, (i+1)%n); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	for added := 0; added < chords; {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		if err := g.AddEdge(u, v); err != nil {
			t.Fatal(err)
		}
		added++
	}
	return g.Static()
}

// withWorkers runs fn under a temporary process-wide worker count.
func withWorkers(w int, fn func()) {
	parallel.SetWorkers(w)
	defer parallel.SetWorkers(0)
	fn()
}

// TestBetweennessDeterministicAcrossWorkers is the core determinism
// guarantee of the concurrency layer: workers=1 and workers=8 must
// produce bit-identical betweenness vectors for the same input.
func TestBetweennessDeterministicAcrossWorkers(t *testing.T) {
	s := testGraph(t, 400, 300, 11)
	var serial, par []float64
	withWorkers(1, func() { serial = Betweenness(s) })
	withWorkers(8, func() { par = Betweenness(s) })
	if len(serial) != len(par) {
		t.Fatalf("length mismatch: %d vs %d", len(serial), len(par))
	}
	for i := range serial {
		if serial[i] != par[i] {
			t.Fatalf("bc[%d]: workers=1 %v != workers=8 %v", i, serial[i], par[i])
		}
	}
}

func TestSampledBetweennessDeterministicAcrossWorkers(t *testing.T) {
	s := testGraph(t, 500, 400, 12)
	var serial, par []float64
	withWorkers(1, func() {
		serial = SampledBetweenness(s, 120, rand.New(rand.NewSource(7)))
	})
	withWorkers(8, func() {
		par = SampledBetweenness(s, 120, rand.New(rand.NewSource(7)))
	})
	for i := range serial {
		if serial[i] != par[i] {
			t.Fatalf("sampled bc[%d]: workers=1 %v != workers=8 %v", i, serial[i], par[i])
		}
	}
}

func TestDistancesDeterministicAcrossWorkers(t *testing.T) {
	s := testGraph(t, 600, 500, 13)
	var serial, par *DistanceDistribution
	withWorkers(1, func() { serial = Distances(s) })
	withWorkers(8, func() { par = Distances(s) })
	if serial.Unreachable != par.Unreachable || serial.Sources != par.Sources {
		t.Fatalf("headline fields differ: %+v vs %+v", serial, par)
	}
	if len(serial.Count) != len(par.Count) {
		t.Fatalf("histogram lengths differ: %d vs %d", len(serial.Count), len(par.Count))
	}
	for x := range serial.Count {
		if serial.Count[x] != par.Count[x] {
			t.Fatalf("Count[%d]: %d vs %d", x, serial.Count[x], par.Count[x])
		}
	}
}

func TestEdgeBetweennessDeterministicAcrossWorkers(t *testing.T) {
	s := testGraph(t, 300, 250, 14)
	var serial, par map[graph.Edge]float64
	withWorkers(1, func() { serial = EdgeBetweenness(s) })
	withWorkers(8, func() { par = EdgeBetweenness(s) })
	if len(serial) != len(par) {
		t.Fatalf("edge count: %d vs %d", len(serial), len(par))
	}
	for e, v := range serial {
		if pv, ok := par[e]; !ok || pv != v {
			t.Fatalf("edge %v: workers=1 %v != workers=8 %v (present=%v)", e, v, pv, ok)
		}
	}
}

func TestDegreeCorrelationDeterministicAcrossWorkers(t *testing.T) {
	s := testGraph(t, 400, 300, 15)
	for _, d := range []int{1, 2, 3} {
		var serial, par float64
		withWorkers(1, func() { serial = DegreeCorrelationAtDistance(s, d) })
		withWorkers(8, func() { par = DegreeCorrelationAtDistance(s, d) })
		if serial != par {
			t.Fatalf("d=%d: workers=1 %v != workers=8 %v", d, serial, par)
		}
	}
}

// TestSummarizeDeterministicAcrossWorkers covers the composite path the
// experiment tables use (assortativity + clustering + distances + S/S2).
func TestSummarizeDeterministicAcrossWorkers(t *testing.T) {
	s := testGraph(t, 400, 300, 16)
	var serial, par Summary
	var err1, err2 error
	withWorkers(1, func() { serial, err1 = Summarize(s, SummaryOptions{}) })
	withWorkers(8, func() { par, err2 = Summarize(s, SummaryOptions{}) })
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if serial != par {
		t.Fatalf("summary differs:\nworkers=1: %+v\nworkers=8: %+v", serial, par)
	}
}
