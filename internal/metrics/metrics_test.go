package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func build(t testing.TB, n int, edges [][2]int) *graph.Static {
	t.Helper()
	g := graph.NewCSR(n)
	for _, e := range edges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return g.Static()
}

// paw: triangle {0,1,2} + pendant 3 on node 2.
func paw(t testing.TB) *graph.Static {
	return build(t, 4, [][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}})
}

func star(t testing.TB, leaves int) *graph.Static {
	g := graph.NewCSR(leaves + 1)
	for i := 1; i <= leaves; i++ {
		if err := g.AddEdge(0, i); err != nil {
			t.Fatal(err)
		}
	}
	return g.Static()
}

func petersen(t testing.TB) *graph.Static {
	// Outer 5-cycle 0..4, inner pentagram 5..9, spokes i—i+5.
	edges := [][2]int{
		{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0},
		{5, 7}, {7, 9}, {9, 6}, {6, 8}, {8, 5},
		{0, 5}, {1, 6}, {2, 7}, {3, 8}, {4, 9},
	}
	return build(t, 10, edges)
}

func connectedRandom(rng *rand.Rand, n, extra int) *graph.Static {
	g := graph.NewCSR(n)
	for i := 1; i < n; i++ {
		if err := g.AddEdge(i, rng.Intn(i)); err != nil {
			panic(err)
		}
	}
	if cap := n*(n-1)/2 - g.M(); extra > cap {
		extra = cap
	}
	for added := 0; added < extra; {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		if err := g.AddEdge(u, v); err != nil {
			panic(err)
		}
		added++
	}
	return g.Static()
}

func TestTrianglesPaw(t *testing.T) {
	ts := Triangles(paw(t))
	if ts.Total != 1 {
		t.Fatalf("Total = %d, want 1", ts.Total)
	}
	want := []int64{1, 1, 1, 0}
	for v, w := range want {
		if ts.PerNode[v] != w {
			t.Errorf("PerNode[%d] = %d, want %d", v, ts.PerNode[v], w)
		}
	}
	// Degrees 2,2,3: products 2·2 + 2·3 + 2·3 = 16.
	if ts.SumProds != 16 {
		t.Errorf("SumProds = %v, want 16", ts.SumProds)
	}
}

func TestTrianglesPetersen(t *testing.T) {
	ts := Triangles(petersen(t))
	if ts.Total != 0 {
		t.Errorf("Petersen graph has %d triangles, want 0 (girth 5)", ts.Total)
	}
}

func TestLocalClusteringPaw(t *testing.T) {
	cl := LocalClustering(paw(t))
	want := []float64{1, 1, 1.0 / 3, 0}
	for v := range want {
		if math.Abs(cl[v]-want[v]) > 1e-12 {
			t.Errorf("c(%d) = %v, want %v", v, cl[v], want[v])
		}
	}
	// C̄ over degree>=2 nodes: (1 + 1 + 1/3)/3.
	if got, w := MeanClustering(paw(t)), (1+1+1.0/3)/3; math.Abs(got-w) > 1e-12 {
		t.Errorf("CBar = %v, want %v", got, w)
	}
}

func TestClusteringByDegree(t *testing.T) {
	ck := ClusteringByDegree(paw(t))
	if math.Abs(ck[2]-1) > 1e-12 {
		t.Errorf("C(2) = %v, want 1", ck[2])
	}
	if math.Abs(ck[3]-1.0/3) > 1e-12 {
		t.Errorf("C(3) = %v, want 1/3", ck[3])
	}
	if _, ok := ck[1]; ok {
		t.Error("C(1) should not be present")
	}
}

func TestGlobalTransitivity(t *testing.T) {
	// Complete graph: transitivity 1.
	k4 := build(t, 4, [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}})
	if got := GlobalTransitivity(k4); math.Abs(got-1) > 1e-12 {
		t.Errorf("K4 transitivity = %v, want 1", got)
	}
	if got := GlobalTransitivity(star(t, 5)); got != 0 {
		t.Errorf("star transitivity = %v, want 0", got)
	}
}

func TestAssortativityStar(t *testing.T) {
	// Stars are maximally disassortative: r = -1.
	got := Assortativity(star(t, 6))
	if math.Abs(got+1) > 1e-9 {
		t.Errorf("star r = %v, want -1", got)
	}
}

func TestAssortativityRegular(t *testing.T) {
	// Regular graphs have zero degree variance at edge ends.
	if got := Assortativity(petersen(t)); got != 0 {
		t.Errorf("Petersen r = %v, want 0", got)
	}
	if got := Assortativity(graph.NewCSR(5).Static()); got != 0 {
		t.Errorf("empty r = %v, want 0", got)
	}
}

func TestAssortativityRangeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := connectedRandom(rng, 5+rng.Intn(40), rng.Intn(60))
		r := Assortativity(s)
		return r >= -1-1e-9 && r <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestLikelihoodS(t *testing.T) {
	// paw: edges (0,1):2·2, (1,2):2·3, (0,2):2·3, (2,3):3·1 → 4+6+6+3 = 19.
	if got := LikelihoodS(paw(t)); got != 19 {
		t.Errorf("S = %v, want 19", got)
	}
}

func TestS2Paw(t *testing.T) {
	// Open wedges of the paw: (0,2,3) ends deg 2 and 1 → 2; (1,2,3) → 2.
	// S2 = 4.
	if got := S2(paw(t)); got != 4 {
		t.Errorf("S2 = %v, want 4", got)
	}
}

// bruteS2 enumerates all open wedges directly.
func bruteS2(s *graph.Static) float64 {
	var sum float64
	for c := 0; c < s.N(); c++ {
		nb := s.Neighbors(c)
		for i := 0; i < len(nb); i++ {
			for j := i + 1; j < len(nb); j++ {
				if !s.HasEdge(int(nb[i]), int(nb[j])) {
					sum += float64(s.Degree(int(nb[i]))) * float64(s.Degree(int(nb[j])))
				}
			}
		}
	}
	return sum
}

func TestS2MatchesBruteForceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := connectedRandom(rng, 5+rng.Intn(30), rng.Intn(80))
		return math.Abs(S2(s)-bruteS2(s)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestDistancesPath(t *testing.T) {
	// Path 0-1-2-3: ordered pairs at distance 1: 6, distance 2: 4, 3: 2.
	s := build(t, 4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	dd := Distances(s)
	if dd.Count[1] != 6 || dd.Count[2] != 4 || dd.Count[3] != 2 {
		t.Errorf("counts = %v, want [_ 6 4 2]", dd.Count)
	}
	wantMean := (6.0 + 8 + 6) / 12
	if math.Abs(dd.Mean()-wantMean) > 1e-12 {
		t.Errorf("Mean = %v, want %v", dd.Mean(), wantMean)
	}
	if dd.MaxDistance() != 3 {
		t.Errorf("MaxDistance = %d, want 3", dd.MaxDistance())
	}
	pdf := dd.PDF()
	var total float64
	for _, p := range pdf {
		total += p
	}
	if math.Abs(total-1) > 1e-12 {
		t.Errorf("PDF sums to %v", total)
	}
}

func TestDistancesDisconnected(t *testing.T) {
	s := build(t, 4, [][2]int{{0, 1}, {2, 3}})
	dd := Distances(s)
	if dd.Unreachable != 8 { // each node cannot reach 2 others
		t.Errorf("Unreachable = %d, want 8", dd.Unreachable)
	}
	if dd.Count[1] != 4 {
		t.Errorf("Count[1] = %d, want 4", dd.Count[1])
	}
}

func TestSampledDistancesUnbiased(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := connectedRandom(rng, 300, 600)
	exact := Distances(s)
	sampled := SampledDistances(s, 120, rng)
	if sampled.Sources != 120 {
		t.Fatalf("Sources = %d, want 120", sampled.Sources)
	}
	if math.Abs(sampled.Mean()-exact.Mean()) > 0.15 {
		t.Errorf("sampled mean %v vs exact %v", sampled.Mean(), exact.Mean())
	}
	// sources >= n falls back to exact.
	full := SampledDistances(s, 1000, rng)
	if full.Sources != s.N() {
		t.Errorf("full sampling Sources = %d, want %d", full.Sources, s.N())
	}
}

func TestSampledDistancesNonPositiveSources(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	s := connectedRandom(rng, 40, 80)
	for _, sources := range []int{0, -3} {
		dd := SampledDistances(s, sources, rng)
		if dd.Sources != 0 || dd.TotalPairs() != 0 || dd.Unreachable != 0 {
			t.Errorf("sources=%d: got Sources=%d pairs=%d unreachable=%d, want empty distribution",
				sources, dd.Sources, dd.TotalPairs(), dd.Unreachable)
		}
		if dd.Mean() != 0 || dd.StdDev() != 0 || dd.MaxDistance() != 0 {
			t.Errorf("sources=%d: empty distribution has nonzero scalars", sources)
		}
	}
	// The guard must not consume RNG state: a nil rng is never touched.
	if dd := SampledDistances(s, 0, nil); dd.Sources != 0 {
		t.Error("sources=0 with nil rng should return the empty distribution")
	}
}

func TestPartialPermDistinctAndUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n, k, trials = 50, 12, 4000
	counts := make([]int, n)
	for trial := 0; trial < trials; trial++ {
		got := partialPerm(rng, n, k)
		if len(got) != k {
			t.Fatalf("len = %d, want %d", len(got), k)
		}
		seen := make(map[int]bool, k)
		for _, v := range got {
			if v < 0 || v >= n {
				t.Fatalf("value %d outside [0,%d)", v, n)
			}
			if seen[v] {
				t.Fatalf("duplicate value %d in %v", v, got)
			}
			seen[v] = true
			counts[v]++
		}
	}
	// Each node appears with probability k/n per trial; a loose 3-sigma
	// band catches gross bias without flaking.
	want := float64(trials) * float64(k) / float64(n)
	sigma := math.Sqrt(want * (1 - float64(k)/float64(n)))
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 4*sigma {
			t.Errorf("node %d drawn %d times, want ≈ %.0f (±%.0f)", v, c, want, 4*sigma)
		}
	}
}

// bruteBetweenness computes betweenness by explicit shortest-path
// enumeration (BFS shortest-path DAG counting per pair).
func bruteBetweenness(s *graph.Static) []float64 {
	n := s.N()
	bc := make([]float64, n)
	dist := make([]int32, n)
	queue := make([]int32, 0, n)
	// count paths s->t through v: sigma_st(v) = sigma_sv * sigma_vt if
	// d(s,v)+d(v,t)=d(s,t).
	sigma := make([][]float64, n)
	dmat := make([][]int32, n)
	for src := 0; src < n; src++ {
		graph.BFS(s, src, dist, queue)
		dmat[src] = append([]int32(nil), dist...)
		sig := make([]float64, n)
		sig[src] = 1
		// Process nodes in BFS distance order.
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		// counting via dynamic programming over distances
		for d := int32(1); ; d++ {
			found := false
			for v := 0; v < n; v++ {
				if dmat[src][v] != d {
					continue
				}
				found = true
				for _, w := range s.Neighbors(v) {
					if dmat[src][w] == d-1 {
						sig[v] += sig[w]
					}
				}
			}
			if !found {
				break
			}
		}
		sigma[src] = sig
	}
	for v := 0; v < n; v++ {
		for src := 0; src < n; src++ {
			for tgt := src + 1; tgt < n; tgt++ {
				if src == v || tgt == v || dmat[src][tgt] < 0 {
					continue
				}
				if dmat[src][v] >= 0 && dmat[v][tgt] >= 0 && dmat[src][v]+dmat[v][tgt] == dmat[src][tgt] {
					bc[v] += sigma[src][v] * sigma[tgt][v] / sigma[src][tgt]
				}
			}
		}
	}
	return bc
}

func TestBetweennessPath(t *testing.T) {
	// Path 0-1-2-3-4: middle node 2 lies on 2·... pairs: (0,3),(0,4),(1,3),
	// (1,4) → 4, node 1 on (0,2),(0,3),(0,4) → 3.
	s := build(t, 5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	bc := Betweenness(s)
	want := []float64{0, 3, 4, 3, 0}
	for v := range want {
		if math.Abs(bc[v]-want[v]) > 1e-9 {
			t.Errorf("bc[%d] = %v, want %v", v, bc[v], want[v])
		}
	}
}

func TestBetweennessStar(t *testing.T) {
	// Star with L leaves: center on all C(L,2) pairs.
	s := star(t, 6)
	bc := Betweenness(s)
	if math.Abs(bc[0]-15) > 1e-9 {
		t.Errorf("center bc = %v, want 15", bc[0])
	}
	for v := 1; v <= 6; v++ {
		if bc[v] != 0 {
			t.Errorf("leaf bc[%d] = %v, want 0", v, bc[v])
		}
	}
}

func TestBetweennessMatchesBruteForceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := connectedRandom(rng, 4+rng.Intn(16), rng.Intn(30))
		fast := Betweenness(s)
		slow := bruteBetweenness(s)
		for v := range fast {
			if math.Abs(fast[v]-slow[v]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSampledBetweennessApproximates(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := connectedRandom(rng, 250, 500)
	exact := Betweenness(s)
	approx := SampledBetweenness(s, 125, rng)
	// Compare the mean absolute error relative to the mean value.
	var mean, err float64
	for v := range exact {
		mean += exact[v]
		err += math.Abs(exact[v] - approx[v])
	}
	if err/mean > 0.35 {
		t.Errorf("sampled betweenness relative error %v too large", err/mean)
	}
}

func TestNormalizedBetweenness(t *testing.T) {
	s := star(t, 4)
	nb := NormalizedBetweenness(s)
	// center: 6 pairs / (5·4/2 = 10) = 0.6
	if math.Abs(nb[0]-0.6) > 1e-12 {
		t.Errorf("normalized center = %v, want 0.6", nb[0])
	}
}

func TestMeanByDegree(t *testing.T) {
	s := paw(t)
	vals := []float64{10, 20, 30, 40}
	byDeg := MeanByDegree(s, vals)
	if math.Abs(byDeg[2]-15) > 1e-12 { // nodes 0,1 have degree 2
		t.Errorf("mean at degree 2 = %v, want 15", byDeg[2])
	}
	if math.Abs(byDeg[3]-30) > 1e-12 {
		t.Errorf("mean at degree 3 = %v, want 30", byDeg[3])
	}
	if math.Abs(byDeg[1]-40) > 1e-12 {
		t.Errorf("mean at degree 1 = %v, want 40", byDeg[1])
	}
}

func TestSMaxGreedy(t *testing.T) {
	// For the paw's degree sequence 3,2,2,1 the greedy wiring connects
	// 3—2, 3—2, 3—1, 2—2 → S = 6+6+3+4 = 19.
	got := SMaxGreedy([]int{3, 2, 2, 1})
	if got != 19 {
		t.Errorf("SMaxGreedy = %v, want 19", got)
	}
	// S of any graph with this sequence is <= the greedy bound here.
	if s := LikelihoodS(paw(t)); s > got {
		t.Errorf("S(paw) = %v exceeds greedy smax %v", s, got)
	}
}

func TestSummarize(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	s := connectedRandom(rng, 80, 160)
	sum, err := Summarize(s, SummaryOptions{Spectral: true, Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	if sum.N != 80 || sum.M != s.M() {
		t.Errorf("N,M = %d,%d", sum.N, sum.M)
	}
	if sum.AvgDegree <= 0 || sum.DBar <= 0 || sum.LambdaN <= 0 {
		t.Errorf("summary has non-positive fields: %+v", sum)
	}
	if sum.Lambda1 <= 0 || sum.Lambda1 > sum.LambdaN {
		t.Errorf("spectrum out of order: λ1=%v λn=%v", sum.Lambda1, sum.LambdaN)
	}
	// Options validation.
	if _, err := Summarize(s, SummaryOptions{Spectral: true}); err == nil {
		t.Error("Spectral without Rng accepted")
	}
	if _, err := Summarize(s, SummaryOptions{DistanceSources: 5}); err == nil {
		t.Error("sampling without Rng accepted")
	}
}

func TestMeanSummaries(t *testing.T) {
	a := Summary{N: 10, M: 20, AvgDegree: 4, R: -0.2, CBar: 0.5}
	b := Summary{N: 12, M: 22, AvgDegree: 6, R: -0.4, CBar: 0.3}
	avg := MeanSummaries([]Summary{a, b})
	if avg.N != 11 || avg.M != 21 {
		t.Errorf("N,M = %d,%d, want 11,21", avg.N, avg.M)
	}
	if math.Abs(avg.AvgDegree-5) > 1e-12 || math.Abs(avg.R+0.3) > 1e-12 {
		t.Errorf("avg = %+v", avg)
	}
	if MeanSummaries(nil) != (Summary{}) {
		t.Error("empty mean not zero")
	}
}

func TestEdgeBetweennessPath(t *testing.T) {
	// Path 0-1-2-3: edge (1,2) carries pairs {0,2},{0,3},{1,2},{1,3} = 4;
	// edge (0,1) carries {0,1},{0,2},{0,3} = 3.
	s := build(t, 4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	eb := EdgeBetweenness(s)
	if got := eb[graph.Edge{U: 1, V: 2}]; math.Abs(got-4) > 1e-9 {
		t.Errorf("eb(1,2) = %v, want 4", got)
	}
	if got := eb[graph.Edge{U: 0, V: 1}]; math.Abs(got-3) > 1e-9 {
		t.Errorf("eb(0,1) = %v, want 3", got)
	}
}

func TestEdgeBetweennessSumInvariant(t *testing.T) {
	// Σ_e eb(e) = Σ over connected pairs of d(u,v): every shortest path of
	// length L crosses L edges, each pair contributes its distance.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := connectedRandom(rng, 5+rng.Intn(30), rng.Intn(60))
		eb := EdgeBetweenness(s)
		var sum float64
		for _, v := range eb {
			sum += v
		}
		dd := Distances(s)
		var wantSum float64
		for x, c := range dd.Count {
			wantSum += float64(x) * float64(c)
		}
		wantSum /= 2 // ordered → unordered pairs
		return math.Abs(sum-wantSum) < 1e-6*math.Max(1, wantSum)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestDegreeCorrelationAtDistanceOne(t *testing.T) {
	// At d = 1 the definition coincides with assortativity over edges.
	rng := rand.New(rand.NewSource(13))
	s := connectedRandom(rng, 60, 120)
	got := DegreeCorrelationAtDistance(s, 1)
	want := Assortativity(s)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("corr at d=1 = %v, assortativity = %v", got, want)
	}
}

func TestDegreeCorrelationEdgeCases(t *testing.T) {
	if got := DegreeCorrelationAtDistance(star(t, 5), 2); got != 0 {
		t.Errorf("star leaf pairs have constant degree; corr = %v, want 0", got)
	}
	if got := DegreeCorrelationAtDistance(star(t, 5), 0); got != 0 {
		t.Errorf("d=0 corr = %v, want 0", got)
	}
	if got := DegreeCorrelationAtDistance(star(t, 5), 9); got != 0 {
		t.Errorf("unreachable distance corr = %v, want 0", got)
	}
}
