package metrics

import (
	"math/rand"

	"repro/internal/graph"
	"repro/internal/parallel"
)

// accumChunks bounds the number of chunks a parallel per-source sweep is
// split into — and therefore the maximum useful worker count for one
// sweep. The chunk split is a fixed policy (a function of the source
// count only — see parallel.Chunks) and partial accumulators are merged
// in chunk order via parallel.OrderedReduce, so the floating-point
// summation order is independent of the worker count: workers=1 and
// workers=N produce bit-identical results. The streaming merge holds
// only the out-of-order window of partials (≈ the active worker count)
// live at once, so a high chunk count costs allocation churn, not
// resident memory.
const accumChunks = 256

// brandesScratch is the per-worker reusable state of one Brandes
// single-source pass. Each pool worker owns one instance; instances are
// never shared across goroutines.
type brandesScratch struct {
	dist         []int32
	sigma, delta []float64 // shortest-path counts, dependency accumulator
	stack, queue []int32
}

func newBrandesScratch(n int) *brandesScratch {
	return &brandesScratch{
		dist:  make([]int32, n),
		sigma: make([]float64, n),
		delta: make([]float64, n),
		stack: make([]int32, 0, n),
		queue: make([]int32, 0, n),
	}
}

// forward runs the shared first phase of a Brandes pass from src: BFS
// with shortest-path counting, filling dist, sigma, delta (zeroed) and
// the traversal stack. The node and edge variants differ only in their
// backward dependency loops.
func (sc *brandesScratch) forward(s *graph.Static, src int) {
	n := s.N()
	for i := 0; i < n; i++ {
		sc.dist[i] = -1
		sc.sigma[i] = 0
		sc.delta[i] = 0
	}
	sc.dist[src] = 0
	sc.sigma[src] = 1
	sc.stack = sc.stack[:0]
	sc.queue = append(sc.queue[:0], int32(src))
	head := 0
	for head < len(sc.queue) {
		u := sc.queue[head]
		head++
		sc.stack = append(sc.stack, u)
		du := sc.dist[u]
		for _, v := range s.Neighbors(int(u)) {
			if sc.dist[v] < 0 {
				sc.dist[v] = du + 1
				sc.queue = append(sc.queue, v)
			}
			if sc.dist[v] == du+1 {
				sc.sigma[v] += sc.sigma[u]
			}
		}
	}
}

// accumulate runs one Brandes pass from src, adding the source's
// dependency contributions into bc.
func (sc *brandesScratch) accumulate(s *graph.Static, src int, bc []float64) {
	sc.forward(s, src)
	// Dependency accumulation in reverse BFS order.
	for i := len(sc.stack) - 1; i > 0; i-- {
		w := sc.stack[i]
		coeff := (1 + sc.delta[w]) / sc.sigma[w]
		dw := sc.dist[w]
		for _, v := range s.Neighbors(int(w)) {
			if sc.dist[v] == dw-1 {
				sc.delta[v] += sc.sigma[v] * coeff
			}
		}
		bc[w] += sc.delta[w]
	}
}

// Betweenness computes exact node betweenness centrality with Brandes'
// algorithm in O(n·m). The returned values count, for each node v, the
// sum over source–target pairs (s ≠ t ≠ v) of the fraction of shortest
// s–t paths passing through v; each unordered pair is counted once.
func Betweenness(s *graph.Static) []float64 {
	return betweenness(s, nil)
}

// SampledBetweenness estimates betweenness from `sources` random BFS
// roots, scaled up by n/sources so values are comparable to the exact
// computation. If sources >= n it is exact.
func SampledBetweenness(s *graph.Static, sources int, rng *rand.Rand) []float64 {
	n := s.N()
	if sources >= n {
		return Betweenness(s)
	}
	perm := rng.Perm(n)[:sources]
	bc := betweenness(s, perm)
	scale := float64(n) / float64(sources)
	for i := range bc {
		bc[i] *= scale
	}
	return bc
}

// betweenness fans the per-source Brandes passes out over the worker
// pool. Sources are split into fixed chunks; each chunk accumulates into
// its own partial vector and partials are merged in chunk order, so the
// result is bit-identical at every worker count (see accumChunks).
func betweenness(s *graph.Static, srcs []int) []float64 {
	n := s.N()
	srcAt := func(i int) int { return i }
	nsrc := n
	if srcs != nil {
		srcAt = func(i int) int { return srcs[i] }
		nsrc = len(srcs)
	}
	bc := make([]float64, n)
	scratch := make([]*brandesScratch, parallel.Workers())
	parallel.OrderedReduce(nsrc, accumChunks,
		func(worker, lo, hi int) []float64 {
			if scratch[worker] == nil {
				scratch[worker] = newBrandesScratch(n)
			}
			partial := make([]float64, n)
			for i := lo; i < hi; i++ {
				scratch[worker].accumulate(s, srcAt(i), partial)
			}
			return partial
		},
		func(partial []float64) {
			for i, x := range partial {
				bc[i] += x
			}
		})
	// Each unordered pair {s,t} was counted twice (once from s, once from
	// t) in the exact case; halve for the undirected convention. Sampled
	// runs approximate the same quantity after the caller's n/sources
	// scaling.
	for i := range bc {
		bc[i] /= 2
	}
	return bc
}

// NormalizedBetweenness divides betweenness values by the number of node
// pairs n·(n−1)/2, yielding the dimensionless quantity plotted against
// degree in Figures 6(b) and 9 of the paper.
func NormalizedBetweenness(s *graph.Static) []float64 {
	bc := Betweenness(s)
	n := float64(s.N())
	norm := n * (n - 1) / 2
	if norm == 0 {
		return bc
	}
	for i := range bc {
		bc[i] /= norm
	}
	return bc
}

// MeanByDegree averages the values of a per-node metric over each degree
// class, returning degree → mean. This produces the per-degree series of
// Figures 6(b) and 9.
func MeanByDegree(s *graph.Static, values []float64) map[int]float64 {
	sum := make(map[int]float64)
	cnt := make(map[int]int)
	for v, x := range values {
		d := s.Degree(v)
		sum[d] += x
		cnt[d]++
	}
	out := make(map[int]float64, len(sum))
	for k := range sum {
		out[k] = sum[k] / float64(cnt[k])
	}
	return out
}

// AutoBetweenness is the size-adaptive entry point: exact Brandes up to
// AutoSampleThreshold nodes, SampledBetweenness with AutoSampleSources
// sources above it. With a nil rng the exact pass always runs.
func AutoBetweenness(s *graph.Static, rng *rand.Rand) []float64 {
	if s.N() > AutoSampleThreshold && rng != nil {
		return SampledBetweenness(s, AutoSampleSources, rng)
	}
	return Betweenness(s)
}
