package metrics

import (
	"math/rand"

	"repro/internal/graph"
)

// Betweenness computes exact node betweenness centrality with Brandes'
// algorithm in O(n·m). The returned values count, for each node v, the
// sum over source–target pairs (s ≠ t ≠ v) of the fraction of shortest
// s–t paths passing through v; each unordered pair is counted once.
func Betweenness(s *graph.Static) []float64 {
	return betweenness(s, nil)
}

// SampledBetweenness estimates betweenness from `sources` random BFS
// roots, scaled up by n/sources so values are comparable to the exact
// computation. If sources >= n it is exact.
func SampledBetweenness(s *graph.Static, sources int, rng *rand.Rand) []float64 {
	n := s.N()
	if sources >= n {
		return Betweenness(s)
	}
	perm := rng.Perm(n)[:sources]
	bc := betweenness(s, perm)
	scale := float64(n) / float64(sources)
	for i := range bc {
		bc[i] *= scale
	}
	return bc
}

func betweenness(s *graph.Static, srcs []int) []float64 {
	n := s.N()
	bc := make([]float64, n)
	// Reusable per-source state.
	dist := make([]int32, n)
	sigma := make([]float64, n) // number of shortest paths
	delta := make([]float64, n) // dependency accumulator
	stack := make([]int32, 0, n)
	queue := make([]int32, 0, n)

	accumulate := func(src int) {
		for i := 0; i < n; i++ {
			dist[i] = -1
			sigma[i] = 0
			delta[i] = 0
		}
		dist[src] = 0
		sigma[src] = 1
		stack = stack[:0]
		queue = append(queue[:0], int32(src))
		head := 0
		for head < len(queue) {
			u := queue[head]
			head++
			stack = append(stack, u)
			du := dist[u]
			for _, v := range s.Neighbors(int(u)) {
				if dist[v] < 0 {
					dist[v] = du + 1
					queue = append(queue, v)
				}
				if dist[v] == du+1 {
					sigma[v] += sigma[u]
				}
			}
		}
		// Dependency accumulation in reverse BFS order.
		for i := len(stack) - 1; i > 0; i-- {
			w := stack[i]
			coeff := (1 + delta[w]) / sigma[w]
			dw := dist[w]
			for _, v := range s.Neighbors(int(w)) {
				if dist[v] == dw-1 {
					delta[v] += sigma[v] * coeff
				}
			}
			bc[w] += delta[w]
		}
	}

	if srcs == nil {
		for src := 0; src < n; src++ {
			accumulate(src)
		}
	} else {
		for _, src := range srcs {
			accumulate(src)
		}
	}
	// Each unordered pair {s,t} was counted twice (once from s, once from
	// t) in the exact case; halve for the undirected convention. Sampled
	// runs approximate the same quantity after the caller's n/sources
	// scaling.
	for i := range bc {
		bc[i] /= 2
	}
	return bc
}

// NormalizedBetweenness divides betweenness values by the number of node
// pairs n·(n−1)/2, yielding the dimensionless quantity plotted against
// degree in Figures 6(b) and 9 of the paper.
func NormalizedBetweenness(s *graph.Static) []float64 {
	bc := Betweenness(s)
	n := float64(s.N())
	norm := n * (n - 1) / 2
	if norm == 0 {
		return bc
	}
	for i := range bc {
		bc[i] /= norm
	}
	return bc
}

// MeanByDegree averages the values of a per-node metric over each degree
// class, returning degree → mean. This produces the per-degree series of
// Figures 6(b) and 9.
func MeanByDegree(s *graph.Static, values []float64) map[int]float64 {
	sum := make(map[int]float64)
	cnt := make(map[int]int)
	for v, x := range values {
		d := s.Degree(v)
		sum[d] += x
		cnt[d]++
	}
	out := make(map[int]float64, len(sum))
	for k := range sum {
		out[k] = sum[k] / float64(cnt[k])
	}
	return out
}
