package metrics

import (
	"math"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/parallel"
)

// DistanceDistribution holds the hop-distance histogram of a graph:
// Count[x] is the number of ordered node pairs (u,v), u ≠ v, at shortest-
// path distance x (index 0 is unused and zero). Unreachable pairs are
// tallied separately. When built by sampling, counts cover only the
// sampled sources but remain an unbiased estimator of the pair fractions.
type DistanceDistribution struct {
	Count       []int64
	Unreachable int64
	Sources     int // number of BFS sources used
}

// Distances computes the exact distance distribution by running a BFS from
// every node. Cost is O(n·m).
func Distances(s *graph.Static) *DistanceDistribution {
	return distances(s, nil, nil)
}

// SampledDistances estimates the distribution using BFS from `sources`
// random distinct source nodes. If sources >= n the computation is exact.
// Non-positive sources yield an empty distribution (Sources = 0, no
// counts) rather than a panic — callers asking for zero samples get the
// zero estimate.
//
// The sources are drawn by a partial Fisher–Yates shuffle costing
// O(sources) time, memory, and RNG draws — not the full O(n) rng.Perm of
// earlier versions, which allocated an n-element permutation (and burned
// n RNG draws) even for tiny samples. The RNG stream therefore differs
// from pre-rewrite versions: the same seed selects a different (still
// uniform) source set. See docs/PERF.md.
func SampledDistances(s *graph.Static, sources int, rng *rand.Rand) *DistanceDistribution {
	n := s.N()
	if sources <= 0 {
		return &DistanceDistribution{Count: make([]int64, 2)}
	}
	if sources >= n {
		return Distances(s)
	}
	return distances(s, partialPerm(rng, n, sources), rng)
}

// partialPerm returns k distinct uniform draws from [0, n) — the first k
// entries of a Fisher–Yates shuffle, with the swap targets kept in a
// sparse map so cost is O(k) rather than O(n).
func partialPerm(rng *rand.Rand, n, k int) []int {
	out := make([]int, k)
	displaced := make(map[int]int, k)
	for i := 0; i < k; i++ {
		j := i + rng.Intn(n-i)
		vj, ok := displaced[j]
		if !ok {
			vj = j
		}
		vi, ok := displaced[i]
		if !ok {
			vi = i
		}
		out[i] = vj
		displaced[j] = vi
	}
	return out
}

// bfsScratch is the reusable per-worker state of one BFS pass, shared by
// the distance and degree-correlation sweeps.
type bfsScratch struct{ dist, queue []int32 }

// bfsScratchFor lazily initializes the calling worker's scratch slot.
func bfsScratchFor(scratch []*bfsScratch, worker, n int) *bfsScratch {
	if scratch[worker] == nil {
		scratch[worker] = &bfsScratch{
			dist:  make([]int32, n),
			queue: make([]int32, 0, n),
		}
	}
	return scratch[worker]
}

// distances fans the per-source BFS sweeps out over the worker pool.
// Each chunk of sources tallies into its own histogram; histograms hold
// integer counts, so merging them (in chunk order, for uniformity with
// the float-valued metrics) is exact and worker-count independent.
func distances(s *graph.Static, srcs []int, _ *rand.Rand) *DistanceDistribution {
	n := s.N()
	srcAt := func(i int) int { return i }
	nsrc := n
	if srcs != nil {
		srcAt = func(i int) int { return srcs[i] }
		nsrc = len(srcs)
	}
	dd := &DistanceDistribution{Count: make([]int64, 2), Sources: nsrc}
	scratch := make([]*bfsScratch, parallel.Workers())
	parallel.OrderedReduce(nsrc, accumChunks,
		func(worker, lo, hi int) *DistanceDistribution {
			sc := bfsScratchFor(scratch, worker, n)
			part := &DistanceDistribution{Count: make([]int64, 2)}
			for i := lo; i < hi; i++ {
				reached := graph.BFS(s, srcAt(i), sc.dist, sc.queue)
				part.Unreachable += int64(n - reached)
				for _, d := range sc.dist {
					if d <= 0 {
						continue
					}
					for int(d) >= len(part.Count) {
						part.Count = append(part.Count, 0)
					}
					part.Count[d]++
				}
			}
			return part
		},
		func(part *DistanceDistribution) {
			dd.Unreachable += part.Unreachable
			for x, cnt := range part.Count {
				for x >= len(dd.Count) {
					dd.Count = append(dd.Count, 0)
				}
				dd.Count[x] += cnt
			}
		})
	return dd
}

// TotalPairs returns the number of ordered reachable pairs counted.
func (dd *DistanceDistribution) TotalPairs() int64 {
	var t int64
	for _, c := range dd.Count {
		t += c
	}
	return t
}

// Mean returns the average distance d̄ over reachable ordered pairs.
func (dd *DistanceDistribution) Mean() float64 {
	t := dd.TotalPairs()
	if t == 0 {
		return 0
	}
	var sum float64
	for x, c := range dd.Count {
		sum += float64(x) * float64(c)
	}
	return sum / float64(t)
}

// StdDev returns σd, the standard deviation of the distance distribution.
func (dd *DistanceDistribution) StdDev() float64 {
	t := dd.TotalPairs()
	if t == 0 {
		return 0
	}
	mean := dd.Mean()
	var sum float64
	for x, c := range dd.Count {
		d := float64(x) - mean
		sum += d * d * float64(c)
	}
	return math.Sqrt(sum / float64(t))
}

// PDF returns the distribution normalized over reachable pairs: PDF()[x]
// is the fraction of pairs at distance x. This is the series plotted in
// Figures 5(b,c), 6(a) and 8 of the paper.
func (dd *DistanceDistribution) PDF() []float64 {
	t := dd.TotalPairs()
	out := make([]float64, len(dd.Count))
	if t == 0 {
		return out
	}
	for x, c := range dd.Count {
		out[x] = float64(c) / float64(t)
	}
	return out
}

// MaxDistance returns the largest observed distance (the diameter when the
// distribution is exact and the graph connected).
func (dd *DistanceDistribution) MaxDistance() int {
	for x := len(dd.Count) - 1; x > 0; x-- {
		if dd.Count[x] > 0 {
			return x
		}
	}
	return 0
}
