package metrics

import (
	"repro/internal/graph"
)

// EdgeBetweenness computes edge betweenness centrality — the paper's
// "link value" analogue — with the edge variant of Brandes' algorithm:
// for each edge, the sum over node pairs of the fraction of shortest
// paths crossing it. Each unordered pair is counted once. The result maps
// canonical edges to values.
func EdgeBetweenness(s *graph.Static) map[graph.Edge]float64 {
	n := s.N()
	out := make(map[graph.Edge]float64, s.M())
	dist := make([]int32, n)
	sigma := make([]float64, n)
	delta := make([]float64, n)
	stack := make([]int32, 0, n)
	queue := make([]int32, 0, n)

	for src := 0; src < n; src++ {
		for i := 0; i < n; i++ {
			dist[i] = -1
			sigma[i] = 0
			delta[i] = 0
		}
		dist[src] = 0
		sigma[src] = 1
		stack = stack[:0]
		queue = append(queue[:0], int32(src))
		head := 0
		for head < len(queue) {
			u := queue[head]
			head++
			stack = append(stack, u)
			du := dist[u]
			for _, v := range s.Neighbors(int(u)) {
				if dist[v] < 0 {
					dist[v] = du + 1
					queue = append(queue, v)
				}
				if dist[v] == du+1 {
					sigma[v] += sigma[u]
				}
			}
		}
		for i := len(stack) - 1; i > 0; i-- {
			w := stack[i]
			coeff := (1 + delta[w]) / sigma[w]
			dw := dist[w]
			for _, v := range s.Neighbors(int(w)) {
				if dist[v] == dw-1 {
					c := sigma[v] * coeff
					delta[v] += c
					e := graph.Edge{U: int(v), V: int(w)}.Canon()
					out[e] += c
				}
			}
		}
	}
	// Each unordered pair contributed twice (once per endpoint as
	// source).
	for e := range out {
		out[e] /= 2
	}
	return out
}

// DegreeCorrelationAtDistance returns the Pearson correlation of the
// degrees of node pairs at exactly hop-distance d — the first of the two
// "extreme metrics" of Section 4.3 (at d = 1 it is the assortativity
// coefficient computed over edges; at d = 2 it summarizes the same
// information as S2). Returns 0 when fewer than two pairs exist or the
// degree variance vanishes.
func DegreeCorrelationAtDistance(s *graph.Static, d int) float64 {
	if d < 1 {
		return 0
	}
	n := s.N()
	dist := make([]int32, n)
	queue := make([]int32, 0, n)
	var cnt, sumX, sumY, sumXY, sumX2, sumY2 float64
	for src := 0; src < n; src++ {
		graph.BFS(s, src, dist, queue)
		dx := float64(s.Degree(src))
		for v := src + 1; v < n; v++ {
			if int(dist[v]) != d {
				continue
			}
			dy := float64(s.Degree(v))
			cnt++
			sumX += dx
			sumY += dy
			sumXY += dx * dy
			sumX2 += dx * dx
			sumY2 += dy * dy
		}
	}
	if cnt < 2 {
		return 0
	}
	// Symmetrize: each unordered pair contributes (dx,dy) once here, but
	// correlation over unordered pairs should be orientation-free; use
	// the symmetric sums.
	sx := (sumX + sumY) / 2
	sxx := (sumX2 + sumY2) / 2
	num := sumXY/cnt - (sx/cnt)*(sx/cnt)
	den := sxx/cnt - (sx/cnt)*(sx/cnt)
	if den == 0 {
		return 0
	}
	return num / den
}
