package metrics

import (
	"repro/internal/graph"
	"repro/internal/parallel"
)

// EdgeBetweenness computes edge betweenness centrality — the paper's
// "link value" analogue — with the edge variant of Brandes' algorithm:
// for each edge, the sum over node pairs of the fraction of shortest
// paths crossing it. Each unordered pair is counted once. The result maps
// canonical edges to values.
//
// The per-source passes fan out over the worker pool; each fixed chunk of
// sources accumulates into its own map and the maps are merged in chunk
// order, so every edge's value is summed in a worker-count-independent
// order and the result is bit-identical at any parallelism level.
func EdgeBetweenness(s *graph.Static) map[graph.Edge]float64 {
	n := s.N()
	out := make(map[graph.Edge]float64, s.M())
	scratch := make([]*brandesScratch, parallel.Workers())
	parallel.OrderedReduce(n, accumChunks, func(worker, lo, hi int) map[graph.Edge]float64 {
		if scratch[worker] == nil {
			scratch[worker] = newBrandesScratch(n)
		}
		sc := scratch[worker]
		part := make(map[graph.Edge]float64)
		for src := lo; src < hi; src++ {
			sc.forward(s, src)
			// Dependency accumulation in reverse BFS order, attributing
			// each contribution to the edge it crosses.
			for i := len(sc.stack) - 1; i > 0; i-- {
				w := sc.stack[i]
				coeff := (1 + sc.delta[w]) / sc.sigma[w]
				dw := sc.dist[w]
				for _, v := range s.Neighbors(int(w)) {
					if sc.dist[v] == dw-1 {
						contrib := sc.sigma[v] * coeff
						sc.delta[v] += contrib
						e := graph.Edge{U: int(v), V: int(w)}.Canon()
						part[e] += contrib
					}
				}
			}
		}
		return part
	}, func(part map[graph.Edge]float64) {
		for e, v := range part {
			out[e] += v
		}
	})
	// Each unordered pair contributed twice (once per endpoint as
	// source).
	for e := range out {
		out[e] /= 2
	}
	return out
}

// DegreeCorrelationAtDistance returns the Pearson correlation of the
// degrees of node pairs at exactly hop-distance d — the first of the two
// "extreme metrics" of Section 4.3 (at d = 1 it is the assortativity
// coefficient computed over edges; at d = 2 it summarizes the same
// information as S2). Returns 0 when fewer than two pairs exist or the
// degree variance vanishes. The per-source BFS sweep is parallelized with
// chunk-ordered partial sums, so it is deterministic at any worker count.
func DegreeCorrelationAtDistance(s *graph.Static, d int) float64 {
	if d < 1 {
		return 0
	}
	n := s.N()
	type sums struct{ cnt, sumX, sumY, sumXY, sumX2, sumY2 float64 }
	var t sums
	scratch := make([]*bfsScratch, parallel.Workers())
	parallel.OrderedReduce(n, accumChunks,
		func(worker, lo, hi int) sums {
			sc := bfsScratchFor(scratch, worker, n)
			var p sums
			for src := lo; src < hi; src++ {
				graph.BFS(s, src, sc.dist, sc.queue)
				dx := float64(s.Degree(src))
				for v := src + 1; v < n; v++ {
					if int(sc.dist[v]) != d {
						continue
					}
					dy := float64(s.Degree(v))
					p.cnt++
					p.sumX += dx
					p.sumY += dy
					p.sumXY += dx * dy
					p.sumX2 += dx * dx
					p.sumY2 += dy * dy
				}
			}
			return p
		},
		func(p sums) {
			t.cnt += p.cnt
			t.sumX += p.sumX
			t.sumY += p.sumY
			t.sumXY += p.sumXY
			t.sumX2 += p.sumX2
			t.sumY2 += p.sumY2
		})
	if t.cnt < 2 {
		return 0
	}
	// Symmetrize: each unordered pair contributes (dx,dy) once here, but
	// correlation over unordered pairs should be orientation-free; use
	// the symmetric sums.
	sx := (t.sumX + t.sumY) / 2
	sxx := (t.sumX2 + t.sumY2) / 2
	num := t.sumXY/t.cnt - (sx/t.cnt)*(sx/t.cnt)
	den := sxx/t.cnt - (sx/t.cnt)*(sx/t.cnt)
	if den == 0 {
		return 0
	}
	return num / den
}
