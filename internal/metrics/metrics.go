// Package metrics computes the topology metrics of Section 2 of the paper:
// degree distribution, assortativity, likelihood (S) and second-order
// likelihood (S2), degree-dependent clustering C(k) and mean clustering C̄,
// the distance distribution with its mean d̄ and deviation σd, and node
// betweenness (Brandes' algorithm). The normalized-Laplacian spectrum
// (λ1, λ_{n−1}) lives in the companion package internal/spectral.
//
// All functions take the immutable CSR snapshot graph.Static; metric
// comparisons in the paper are made on giant connected components, which
// callers extract first via graph.GiantComponent.
//
// The O(n·m) per-source sweeps (betweenness, distance distributions,
// degree correlations) fan their BFS sources out over the worker pool of
// internal/parallel. Partial results are accumulated per fixed chunk of
// sources and merged in chunk order, so every function returns
// bit-identical values at any worker count — see DESIGN.md §3.
package metrics

import (
	"math"

	"repro/internal/graph"
)

// TriangleStats aggregates one exact triangle enumeration pass: per-node
// triangle membership counts and the sum over triangles of pairwise degree
// products (used to discount closed wedges in S2).
type TriangleStats struct {
	PerNode  []int64 // number of triangles containing each node
	Total    int64   // number of triangles in the graph
	SumProds float64 // Σ_triangles (d_a·d_b + d_a·d_c + d_b·d_c)
}

// Triangles enumerates every triangle exactly once (by its ordered corners
// u < v < w) by scanning, for each canonical edge (u,v), the common
// neighbors w > v. The scan walks the smaller adjacency window and binary-
// searches the larger, costing O(Σ_e min(d_u,d_v)·log d_max).
func Triangles(s *graph.Static) TriangleStats {
	n := s.N()
	ts := TriangleStats{PerNode: make([]int64, n)}
	deg := make([]float64, n)
	for u := 0; u < n; u++ {
		deg[u] = float64(s.Degree(u))
	}
	for u := 0; u < n; u++ {
		for _, v32 := range s.Neighbors(u) {
			v := int(v32)
			if v <= u {
				continue
			}
			// Iterate over the smaller neighborhood.
			a, b := u, v
			if s.Degree(a) > s.Degree(b) {
				a, b = b, a
			}
			for _, w32 := range s.Neighbors(a) {
				w := int(w32)
				if w <= v {
					continue
				}
				if s.HasEdge(b, w) {
					ts.PerNode[u]++
					ts.PerNode[v]++
					ts.PerNode[w]++
					ts.Total++
					ts.SumProds += deg[u]*deg[v] + deg[u]*deg[w] + deg[v]*deg[w]
				}
			}
		}
	}
	return ts
}

// Assortativity returns Newman's assortativity coefficient r: the Pearson
// correlation of the degrees at either end of an edge. It returns 0 for
// graphs with no edges or zero degree variance at edge ends (e.g. regular
// graphs).
func Assortativity(s *graph.Static) float64 {
	m := float64(s.M())
	if m == 0 {
		return 0
	}
	var sumProd, sumHalf, sumHalfSq float64
	for u := 0; u < s.N(); u++ {
		du := float64(s.Degree(u))
		for _, v32 := range s.Neighbors(u) {
			v := int(v32)
			if v <= u {
				continue
			}
			dv := float64(s.Degree(v))
			sumProd += du * dv
			sumHalf += (du + dv) / 2
			sumHalfSq += (du*du + dv*dv) / 2
		}
	}
	num := sumProd/m - (sumHalf/m)*(sumHalf/m)
	den := sumHalfSq/m - (sumHalf/m)*(sumHalf/m)
	if den == 0 {
		return 0
	}
	return num / den
}

// LikelihoodS returns S = Σ_{(u,v)∈E} d_u·d_v, the likelihood metric of Li
// et al. that the paper uses for 1K-space exploration.
func LikelihoodS(s *graph.Static) float64 {
	var sum float64
	for u := 0; u < s.N(); u++ {
		du := float64(s.Degree(u))
		for _, v32 := range s.Neighbors(u) {
			if int(v32) > u {
				sum += du * float64(s.Degree(int(v32)))
			}
		}
	}
	return sum
}

// S2 returns the second-order likelihood: the sum over open wedges (paths
// a–c–b with a,b non-adjacent) of the products of the end degrees d_a·d_b.
// It is computed without enumerating wedges: all neighbor pairs of each
// center contribute ((Σd)²−Σd²)/2, and one triangle pass subtracts the
// closed pairs.
func S2(s *graph.Static) float64 {
	var allPairs float64
	for c := 0; c < s.N(); c++ {
		var sum, sumSq float64
		for _, v32 := range s.Neighbors(c) {
			d := float64(s.Degree(int(v32)))
			sum += d
			sumSq += d * d
		}
		allPairs += (sum*sum - sumSq) / 2
	}
	return allPairs - Triangles(s).SumProds
}

// LocalClustering returns each node's clustering coefficient
// c(v) = triangles(v)/C(d_v,2); nodes of degree < 2 get 0.
func LocalClustering(s *graph.Static) []float64 {
	ts := Triangles(s)
	out := make([]float64, s.N())
	for v := range out {
		d := s.Degree(v)
		if d >= 2 {
			out[v] = 2 * float64(ts.PerNode[v]) / (float64(d) * float64(d-1))
		}
	}
	return out
}

// MeanClustering returns C̄, the mean local clustering over nodes of
// degree >= 2 (nodes that can participate in a triangle). Returns 0 when
// no such node exists.
func MeanClustering(s *graph.Static) float64 {
	cl := LocalClustering(s)
	var sum float64
	cnt := 0
	for v, c := range cl {
		if s.Degree(v) >= 2 {
			sum += c
			cnt++
		}
	}
	if cnt == 0 {
		return 0
	}
	return sum / float64(cnt)
}

// ClusteringByDegree returns C(k): the mean local clustering of degree-k
// nodes, for every degree k >= 2 present in the graph.
func ClusteringByDegree(s *graph.Static) map[int]float64 {
	cl := LocalClustering(s)
	sum := make(map[int]float64)
	cnt := make(map[int]int)
	for v, c := range cl {
		if d := s.Degree(v); d >= 2 {
			sum[d] += c
			cnt[d]++
		}
	}
	out := make(map[int]float64, len(sum))
	for k, sc := range sum {
		out[k] = sc / float64(cnt[k])
	}
	return out
}

// GlobalTransitivity returns 3·triangles / (number of connected node
// triples), an alternative clustering summary provided for completeness.
func GlobalTransitivity(s *graph.Static) float64 {
	ts := Triangles(s)
	var wedgesIncl float64 // neighbor pairs around every center
	for c := 0; c < s.N(); c++ {
		d := float64(s.Degree(c))
		wedgesIncl += d * (d - 1) / 2
	}
	if wedgesIncl == 0 {
		return 0
	}
	return 3 * float64(ts.Total) / wedgesIncl
}

// DegreeHistogram returns n(k) for the graph.
func DegreeHistogram(s *graph.Static) map[int]int {
	out := make(map[int]int)
	for u := 0; u < s.N(); u++ {
		out[s.Degree(u)]++
	}
	return out
}

// SMaxGreedy estimates S_max for a degree sequence: the maximum of S over
// simple connected graphs with that degree sequence, per Li et al.'s
// construction — connect stubs in order of decreasing degree product,
// highest-degree nodes first. The estimate is a tight upper-shape greedy,
// not an exact optimum; the paper itself uses it only as a normalization.
func SMaxGreedy(seq []int) float64 {
	// Sort degrees descending; pair remaining stubs greedily: the node
	// with the most remaining stubs connects to the next-highest nodes.
	type nd struct{ deg, left int }
	nodes := make([]nd, len(seq))
	for i, d := range seq {
		nodes[i] = nd{d, d}
	}
	// Selection by degree descending.
	for i := range nodes {
		maxJ := i
		for j := i + 1; j < len(nodes); j++ {
			if nodes[j].deg > nodes[maxJ].deg {
				maxJ = j
			}
		}
		nodes[i], nodes[maxJ] = nodes[maxJ], nodes[i]
	}
	var S float64
	for i := 0; i < len(nodes); i++ {
		for j := i + 1; j < len(nodes) && nodes[i].left > 0; j++ {
			if nodes[j].left > 0 {
				S += float64(nodes[i].deg) * float64(nodes[j].deg)
				nodes[i].left--
				nodes[j].left--
			}
		}
	}
	return S
}

// RadiusOfValues is a small helper returning min and max of a slice;
// convenient when reporting metric spreads across seeds.
func RadiusOfValues(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		return math.NaN(), math.NaN()
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}
