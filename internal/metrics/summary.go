package metrics

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/spectral"
)

// Summary bundles the scalar metrics reported in Tables 2–8 of the paper.
// The JSON field names are part of the HTTP service's public API
// (docs/API.md); being a flat struct, the encoding is stable as-is.
type Summary struct {
	N         int     `json:"n"`
	M         int     `json:"m"`
	AvgDegree float64 `json:"avg_degree"` // k̄
	R         float64 `json:"r"`          // assortativity coefficient r
	CBar      float64 `json:"c_bar"`      // mean clustering C̄
	DBar      float64 `json:"d_bar"`      // average distance d̄
	SigmaD    float64 `json:"sigma_d"`    // std-dev of the distance distribution σd
	S         float64 `json:"s"`          // likelihood Σ d_u·d_v over edges
	S2        float64 `json:"s2"`         // second-order likelihood
	Lambda1   float64 `json:"lambda1"`    // smallest nonzero eigenvalue of the normalized Laplacian
	LambdaN   float64 `json:"lambda_n"`   // largest eigenvalue of the normalized Laplacian
}

// AutoSampleThreshold is the node count above which Summarize (and
// AutoBetweenness) switch from the exact all-sources BFS pass to
// sampling with AutoSampleSources sources. Exact distances are Θ(N·M);
// past ~10⁵ nodes that dwarfs every other scalar in the suite, so the
// sampled estimator becomes the default on the million-node path. A
// variable rather than a constant so tests can pin the boundary.
var AutoSampleThreshold = 100_000

// AutoSampleSources is the BFS source budget the automatic switch uses.
// 256 sources keep d̄ and σd within a fraction of a percent on the
// paper-scale topologies while costing 256 BFS passes instead of N.
const AutoSampleSources = 256

// SummaryOptions tunes the potentially expensive parts of Summarize.
type SummaryOptions struct {
	// Spectral enables λ1/λ_{n−1} computation (requires a connected graph).
	Spectral bool
	// DistanceSources bounds the number of BFS sources for the distance
	// distribution; 0 means automatic — exact up to AutoSampleThreshold
	// nodes, AutoSampleSources sampled sources above it (when an Rng is
	// available). Negative, or ExactDistances, forces exact.
	DistanceSources int
	// ExactDistances opts out of the automatic sampling switch: the
	// distance pass stays exact no matter the graph size.
	ExactDistances bool
	// SkipS2 skips the second-order likelihood (the most expensive scalar
	// on hub-heavy graphs).
	SkipS2 bool
	// Rng drives sampling and the Lanczos start vector; required when
	// DistanceSources > 0 or Spectral is set.
	Rng *rand.Rand
}

// Summarize computes the scalar metric suite on s. Metrics in the paper
// are reported for giant connected components; pass the GCC.
func Summarize(s *graph.Static, opt SummaryOptions) (Summary, error) {
	sum := Summary{
		N:         s.N(),
		M:         s.M(),
		AvgDegree: s.AvgDegree(),
		R:         Assortativity(s),
		CBar:      MeanClustering(s),
		S:         LikelihoodS(s),
	}
	if !opt.SkipS2 {
		sum.S2 = S2(s)
	}
	var dd *DistanceDistribution
	switch {
	case opt.DistanceSources > 0:
		if opt.Rng == nil {
			return sum, fmt.Errorf("metrics: DistanceSources > 0 requires Rng")
		}
		dd = SampledDistances(s, opt.DistanceSources, opt.Rng)
	case opt.DistanceSources == 0 && !opt.ExactDistances &&
		s.N() > AutoSampleThreshold && opt.Rng != nil:
		// Automatic switch: exact distances are Θ(N·M) and would dominate
		// the whole summary; callers that need the exact value set
		// ExactDistances (or a negative DistanceSources).
		dd = SampledDistances(s, AutoSampleSources, opt.Rng)
	default:
		dd = Distances(s)
	}
	sum.DBar = dd.Mean()
	sum.SigmaD = dd.StdDev()
	if opt.Spectral {
		rng := opt.Rng
		if rng == nil {
			return sum, fmt.Errorf("metrics: Spectral requires Rng")
		}
		l1, ln, err := spectral.Extremes(s, rng, 0)
		if err != nil {
			return sum, fmt.Errorf("metrics: spectrum: %w", err)
		}
		sum.Lambda1, sum.LambdaN = l1, ln
	}
	return sum, nil
}

// MeanSummaries averages a set of summaries field-wise (integer fields are
// averaged and rounded); used for the "average over 100 graphs" rows of
// the paper's tables.
func MeanSummaries(ss []Summary) Summary {
	if len(ss) == 0 {
		return Summary{}
	}
	var out Summary
	nf := float64(len(ss))
	var n, m float64
	for _, s := range ss {
		n += float64(s.N)
		m += float64(s.M)
		out.AvgDegree += s.AvgDegree
		out.R += s.R
		out.CBar += s.CBar
		out.DBar += s.DBar
		out.SigmaD += s.SigmaD
		out.S += s.S
		out.S2 += s.S2
		out.Lambda1 += s.Lambda1
		out.LambdaN += s.LambdaN
	}
	out.N = int(n/nf + 0.5)
	out.M = int(m/nf + 0.5)
	out.AvgDegree /= nf
	out.R /= nf
	out.CBar /= nf
	out.DBar /= nf
	out.SigmaD /= nf
	out.S /= nf
	out.S2 /= nf
	out.Lambda1 /= nf
	out.LambdaN /= nf
	return out
}
