package spectral

import (
	"math"
	"sort"
)

// TridiagEigenvalues returns the eigenvalues (sorted ascending) of the
// symmetric tridiagonal matrix with diagonal d (length n) and
// off-diagonal e (length n−1), using the implicit QL algorithm with
// Wilkinson shifts — the standard "tqli" routine, eigenvalues only.
func TridiagEigenvalues(d, e []float64) []float64 {
	n := len(d)
	dd := append([]float64(nil), d...)
	ee := make([]float64, n)
	copy(ee, e)
	if n == 0 {
		return nil
	}
	for l := 0; l < n; l++ {
		for iter := 0; iter < 50; iter++ {
			// Find a small off-diagonal element to split at.
			m := l
			for ; m < n-1; m++ {
				s := math.Abs(dd[m]) + math.Abs(dd[m+1])
				if math.Abs(ee[m]) <= 1e-300 || math.Abs(ee[m]) <= 1e-15*s {
					break
				}
			}
			if m == l {
				break
			}
			// Wilkinson shift.
			g := (dd[l+1] - dd[l]) / (2 * ee[l])
			r := math.Hypot(g, 1)
			g = dd[m] - dd[l] + ee[l]/(g+math.Copysign(r, g))
			s, c := 1.0, 1.0
			p := 0.0
			for i := m - 1; i >= l; i-- {
				f := s * ee[i]
				b := c * ee[i]
				r = math.Hypot(f, g)
				ee[i+1] = r
				if r == 0 {
					dd[i+1] -= p
					ee[m] = 0
					break
				}
				s = f / r
				c = g / r
				g = dd[i+1] - p
				r = (dd[i]-g)*s + 2*c*b
				p = s * r
				dd[i+1] = g + p
				g = c*r - b
			}
			if r == 0 && m-1 >= l {
				continue
			}
			dd[l] -= p
			ee[l] = g
			ee[m] = 0
		}
	}
	out := dd[:n]
	sort.Float64s(out)
	return out
}

// Jacobi computes all eigenvalues (sorted ascending) of a symmetric dense
// matrix by cyclic Jacobi rotations. The input matrix is not modified.
// Intended for small matrices (tests and graphs of a few hundred nodes).
func Jacobi(a [][]float64) []float64 {
	n := len(a)
	m := make([][]float64, n)
	for i := range m {
		m[i] = append([]float64(nil), a[i]...)
	}
	for sweep := 0; sweep < 100; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += m[i][j] * m[i][j]
			}
		}
		if off < 1e-22 {
			break
		}
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				if math.Abs(m[p][q]) < 1e-300 {
					continue
				}
				theta := (m[q][q] - m[p][p]) / (2 * m[p][q])
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				// Apply rotation G(p,q,θ) on both sides.
				for k := 0; k < n; k++ {
					mkp, mkq := m[k][p], m[k][q]
					m[k][p] = c*mkp - s*mkq
					m[k][q] = s*mkp + c*mkq
				}
				for k := 0; k < n; k++ {
					mpk, mqk := m[p][k], m[q][k]
					m[p][k] = c*mpk - s*mqk
					m[q][k] = s*mpk + c*mqk
				}
			}
		}
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = m[i][i]
	}
	sort.Float64s(out)
	return out
}
