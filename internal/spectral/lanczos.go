package spectral

import (
	"fmt"
	"math"
	"math/rand"
)

// lanczosExtremes runs the Lanczos iteration on the normalized Laplacian
// restricted to the orthogonal complement of its known nullvector, with
// full reorthogonalization for numerical robustness. The extreme Ritz
// values of the resulting tridiagonal matrix converge to λ1 (bottom) and
// λ_{n−1} (top).
func lanczosExtremes(l *Laplacian, rng *rand.Rand, maxIter int) (lo, hi float64, err error) {
	n := l.N()
	if maxIter <= 0 {
		maxIter = 400
	}
	if maxIter > n-1 {
		maxIter = n - 1
	}
	null := l.NullVector()

	// Start vector: random, orthogonal to the nullvector.
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.Float64() - 0.5
	}
	orthogonalize(v, null)
	if nrm := norm(v); nrm == 0 {
		return 0, 0, fmt.Errorf("spectral: degenerate start vector")
	} else {
		scale(v, 1/nrm)
	}

	basis := make([][]float64, 0, maxIter)
	var alphas, betas []float64 // tridiagonal entries; betas[i] couples i and i+1
	w := make([]float64, n)
	prevLo, prevHi := math.Inf(1), math.Inf(-1)
	const tol = 1e-10

	for iter := 0; iter < maxIter; iter++ {
		basis = append(basis, append([]float64(nil), v...))
		l.MatVec(v, w)
		alpha := dot(w, v)
		alphas = append(alphas, alpha)
		// w ← w − α·v − β·v_prev, then full reorthogonalization against
		// the nullvector and the whole basis (twice is enough).
		axpy(w, v, -alpha)
		if len(betas) > 0 {
			axpy(w, basis[len(basis)-2], -betas[len(betas)-1])
		}
		for pass := 0; pass < 2; pass++ {
			orthogonalize(w, null)
			for _, b := range basis {
				orthogonalize(w, b)
			}
		}
		beta := norm(w)
		if beta < 1e-14 {
			// Invariant subspace exhausted: the tridiagonal spectrum is
			// exact for the deflated operator.
			break
		}
		betas = append(betas, beta)
		for i := range v {
			v[i] = w[i] / beta
		}
		// Convergence check on the extreme Ritz values every few steps.
		if iter >= 8 && iter%4 == 0 {
			ev := TridiagEigenvalues(alphas, betas[:len(betas)-1])
			curLo, curHi := ev[0], ev[len(ev)-1]
			if math.Abs(curLo-prevLo) < tol && math.Abs(curHi-prevHi) < tol {
				return curLo, curHi, nil
			}
			prevLo, prevHi = curLo, curHi
		}
	}
	nb := len(alphas) - 1
	if nb < 0 {
		return 0, 0, fmt.Errorf("spectral: Lanczos made no progress")
	}
	ev := TridiagEigenvalues(alphas, betas[:min(nb, len(betas))])
	return ev[0], ev[len(ev)-1], nil
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func norm(a []float64) float64 { return math.Sqrt(dot(a, a)) }

func scale(a []float64, c float64) {
	for i := range a {
		a[i] *= c
	}
}

// axpy computes a ← a + c·b.
func axpy(a, b []float64, c float64) {
	for i := range a {
		a[i] += c * b[i]
	}
}

// orthogonalize removes from a its component along unit vector u.
func orthogonalize(a, u []float64) {
	c := dot(a, u)
	if c != 0 {
		axpy(a, u, -c)
	}
}
