// Package spectral computes the normalized-Laplacian spectrum bounds the
// paper reports: λ1, the smallest nonzero eigenvalue, and λ_{n−1}, the
// largest eigenvalue. The Laplacian is the paper's (and Chung's) normalized
// form: L_ij = 1 for i = j, −1/√(k_i·k_j) for edges (i,j), 0 otherwise;
// all eigenvalues lie in [0, 2], and on a connected graph the single zero
// eigenvalue has the known eigenvector v0 ∝ D^{1/2}·1.
//
// Large graphs use a from-scratch Lanczos iteration with full
// reorthogonalization, deflating the known nullvector so the bottom Ritz
// value converges to λ1 rather than 0. Small graphs (and the test suite)
// can use the dense Jacobi eigensolver for exact cross-validation.
package spectral

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/graph"
)

// Laplacian is a matrix-free normalized Laplacian operator over a graph.
type Laplacian struct {
	s       *graph.Static
	invSqrt []float64 // 1/√deg per node
}

// NewLaplacian wraps s. Every node must have degree >= 1 (run on a giant
// connected component); it returns an error otherwise.
func NewLaplacian(s *graph.Static) (*Laplacian, error) {
	n := s.N()
	if n == 0 {
		return nil, fmt.Errorf("spectral: empty graph")
	}
	inv := make([]float64, n)
	for u := 0; u < n; u++ {
		d := s.Degree(u)
		if d == 0 {
			return nil, fmt.Errorf("spectral: node %d has degree 0; extract the GCC first", u)
		}
		inv[u] = 1 / math.Sqrt(float64(d))
	}
	return &Laplacian{s: s, invSqrt: inv}, nil
}

// N returns the dimension.
func (l *Laplacian) N() int { return l.s.N() }

// MatVec computes y = L·x.
func (l *Laplacian) MatVec(x, y []float64) {
	n := l.s.N()
	for u := 0; u < n; u++ {
		sum := 0.0
		iu := l.invSqrt[u]
		for _, v := range l.s.Neighbors(u) {
			sum += x[v] * l.invSqrt[v]
		}
		y[u] = x[u] - iu*sum
	}
}

// NullVector returns the normalized known zero-eigenvector of a connected
// graph: v0[u] = √deg(u), normalized to unit length.
func (l *Laplacian) NullVector() []float64 {
	n := l.s.N()
	v := make([]float64, n)
	var norm float64
	for u := 0; u < n; u++ {
		v[u] = 1 / l.invSqrt[u] // √deg
		norm += v[u] * v[u]
	}
	norm = math.Sqrt(norm)
	for u := range v {
		v[u] /= norm
	}
	return v
}

// Dense materializes the full Laplacian matrix (row-major), for use with
// the Jacobi solver on small graphs.
func (l *Laplacian) Dense() [][]float64 {
	n := l.s.N()
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
		a[i][i] = 1
	}
	for u := 0; u < n; u++ {
		for _, v32 := range l.s.Neighbors(u) {
			v := int(v32)
			a[u][v] = -l.invSqrt[u] * l.invSqrt[v]
		}
	}
	return a
}

// Extremes returns (λ1, λ_{n−1}) of the normalized Laplacian of a
// connected graph: the smallest nonzero and the largest eigenvalue. Graphs
// up to the dense threshold are solved exactly with Jacobi; larger ones
// use deflated Lanczos with maxIter iterations (0 means an automatic
// budget). rng seeds the Lanczos start vector.
func Extremes(s *graph.Static, rng *rand.Rand, maxIter int) (lambda1, lambdaN float64, err error) {
	l, err := NewLaplacian(s)
	if err != nil {
		return 0, 0, err
	}
	if !graph.IsConnected(s) {
		return 0, 0, fmt.Errorf("spectral: graph is disconnected; extract the GCC first")
	}
	const denseThreshold = 220
	if s.N() <= denseThreshold {
		vals := Jacobi(l.Dense())
		// vals sorted ascending; vals[0] ≈ 0 is the trivial eigenvalue.
		return vals[1], vals[len(vals)-1], nil
	}
	return lanczosExtremes(l, rng, maxIter)
}
