package spectral

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func build(t testing.TB, n int, edges [][2]int) *graph.Static {
	t.Helper()
	g := graph.NewCSR(n)
	for _, e := range edges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return g.Static()
}

func complete(t testing.TB, n int) *graph.Static {
	g := graph.NewCSR(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if err := g.AddEdge(i, j); err != nil {
				t.Fatal(err)
			}
		}
	}
	return g.Static()
}

func cycle(t testing.TB, n int) *graph.Static {
	g := graph.NewCSR(n)
	for i := 0; i < n; i++ {
		if err := g.AddEdge(i, (i+1)%n); err != nil {
			t.Fatal(err)
		}
	}
	return g.Static()
}

func connectedRandom(rng *rand.Rand, n, extra int) *graph.Static {
	g := graph.NewCSR(n)
	for i := 1; i < n; i++ {
		if err := g.AddEdge(i, rng.Intn(i)); err != nil {
			panic(err)
		}
	}
	// Cap extra edges by the remaining simple-graph capacity so the
	// rejection loop below always terminates.
	if cap := n*(n-1)/2 - g.M(); extra > cap {
		extra = cap
	}
	for added := 0; added < extra; {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		if err := g.AddEdge(u, v); err != nil {
			panic(err)
		}
		added++
	}
	return g.Static()
}

func TestTridiagKnownEigenvalues(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	ev := TridiagEigenvalues([]float64{2, 2}, []float64{1})
	if math.Abs(ev[0]-1) > 1e-12 || math.Abs(ev[1]-3) > 1e-12 {
		t.Errorf("eigenvalues = %v, want [1 3]", ev)
	}
	// Diagonal matrix.
	ev = TridiagEigenvalues([]float64{3, 1, 2}, []float64{0, 0})
	want := []float64{1, 2, 3}
	for i := range want {
		if math.Abs(ev[i]-want[i]) > 1e-12 {
			t.Errorf("eigenvalues = %v, want %v", ev, want)
		}
	}
}

func TestTridiagMatchesJacobiProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		d := make([]float64, n)
		e := make([]float64, n-1)
		for i := range d {
			d[i] = rng.NormFloat64()
		}
		for i := range e {
			e[i] = rng.NormFloat64()
		}
		dense := make([][]float64, n)
		for i := range dense {
			dense[i] = make([]float64, n)
			dense[i][i] = d[i]
		}
		for i := range e {
			dense[i][i+1] = e[i]
			dense[i+1][i] = e[i]
		}
		tri := TridiagEigenvalues(d, e)
		jac := Jacobi(dense)
		for i := range tri {
			if math.Abs(tri[i]-jac[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestJacobiKnown(t *testing.T) {
	// [[0,1],[1,0]] → ±1.
	ev := Jacobi([][]float64{{0, 1}, {1, 0}})
	if math.Abs(ev[0]+1) > 1e-10 || math.Abs(ev[1]-1) > 1e-10 {
		t.Errorf("eigenvalues = %v, want [-1 1]", ev)
	}
}

// Normalized Laplacian of K_n: eigenvalue 0 once and n/(n−1) with
// multiplicity n−1.
func TestExtremesCompleteGraph(t *testing.T) {
	for _, n := range []int{4, 9, 30} {
		s := complete(t, n)
		l1, ln, err := Extremes(s, rand.New(rand.NewSource(1)), 0)
		if err != nil {
			t.Fatal(err)
		}
		want := float64(n) / float64(n-1)
		if math.Abs(l1-want) > 1e-8 {
			t.Errorf("K%d: λ1 = %v, want %v", n, l1, want)
		}
		if math.Abs(ln-want) > 1e-8 {
			t.Errorf("K%d: λn−1 = %v, want %v", n, ln, want)
		}
	}
}

// Normalized Laplacian eigenvalues of the cycle C_n are 1 − cos(2πk/n).
func TestExtremesCycle(t *testing.T) {
	n := 40
	s := cycle(t, n)
	l1, ln, err := Extremes(s, rand.New(rand.NewSource(2)), 0)
	if err != nil {
		t.Fatal(err)
	}
	wantLo := 1 - math.Cos(2*math.Pi/float64(n))
	// Largest: k = n/2 (even n) → 1 − cos(π) = 2.
	if math.Abs(l1-wantLo) > 1e-8 {
		t.Errorf("C%d: λ1 = %v, want %v", n, l1, wantLo)
	}
	if math.Abs(ln-2) > 1e-8 {
		t.Errorf("C%d: λn−1 = %v, want 2", n, ln)
	}
}

// Star K_{1,n−1}: normalized Laplacian eigenvalues are 0, 1 (multiplicity
// n−2), and 2.
func TestExtremesStar(t *testing.T) {
	n := 50
	g := graph.NewCSR(n)
	for i := 1; i < n; i++ {
		if err := g.AddEdge(0, i); err != nil {
			t.Fatal(err)
		}
	}
	l1, ln, err := Extremes(g.Static(), rand.New(rand.NewSource(3)), 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l1-1) > 1e-8 {
		t.Errorf("star: λ1 = %v, want 1", l1)
	}
	if math.Abs(ln-2) > 1e-8 {
		t.Errorf("star: λn−1 = %v, want 2", ln)
	}
}

// TestLanczosMatchesJacobi cross-validates the two solvers on random
// connected graphs just above the dense threshold by calling the Lanczos
// path directly.
func TestLanczosMatchesJacobi(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 5; trial++ {
		s := connectedRandom(rng, 120, 300)
		l, err := NewLaplacian(s)
		if err != nil {
			t.Fatal(err)
		}
		lo, hi, err := lanczosExtremes(l, rng, 0)
		if err != nil {
			t.Fatal(err)
		}
		vals := Jacobi(l.Dense())
		if math.Abs(lo-vals[1]) > 1e-6 {
			t.Errorf("trial %d: Lanczos λ1 = %v, Jacobi = %v", trial, lo, vals[1])
		}
		if math.Abs(hi-vals[len(vals)-1]) > 1e-6 {
			t.Errorf("trial %d: Lanczos λn−1 = %v, Jacobi = %v", trial, hi, vals[len(vals)-1])
		}
	}
}

func TestExtremesLargePath(t *testing.T) {
	// Exercise the Lanczos path (n > dense threshold) on a graph with a
	// tiny spectral gap: λ1 of the path P_n is ≈ (π/n)²·(1/2)... just
	// check bounds and ordering rather than the closed form.
	n := 500
	g := graph.NewCSR(n)
	for i := 0; i+1 < n; i++ {
		if err := g.AddEdge(i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	l1, ln, err := Extremes(g.Static(), rand.New(rand.NewSource(4)), 0)
	if err != nil {
		t.Fatal(err)
	}
	if l1 <= 0 || l1 > 0.01 {
		t.Errorf("path: λ1 = %v, want small positive", l1)
	}
	if ln < 1.9 || ln > 2+1e-9 {
		t.Errorf("path: λn−1 = %v, want ≈ 2", ln)
	}
}

func TestLaplacianValidation(t *testing.T) {
	if _, err := NewLaplacian(graph.NewCSR(0).Static()); err == nil {
		t.Error("empty graph accepted")
	}
	g := graph.NewCSR(3)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := NewLaplacian(g.Static()); err == nil {
		t.Error("degree-0 node accepted")
	}
	if _, _, err := Extremes(build(t, 4, [][2]int{{0, 1}, {2, 3}}), rand.New(rand.NewSource(1)), 0); err == nil {
		t.Error("disconnected graph accepted")
	}
}

func TestEigenvaluesInRange(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(60)
		s := connectedRandom(rng, n, rng.Intn(2*n))
		l1, ln, err := Extremes(s, rng, 0)
		if err != nil {
			return false
		}
		return l1 > -1e-9 && ln <= 2+1e-9 && l1 <= ln
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestBipartiteLargestEigenvalue checks the classical theorem: the largest
// normalized-Laplacian eigenvalue equals 2 exactly when the graph is
// bipartite (even cycles, paths, stars) and is strictly below 2 otherwise
// (odd cycles).
func TestBipartiteLargestEigenvalue(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	_, evenMax, err := Extremes(cycle(t, 12), rng, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(evenMax-2) > 1e-8 {
		t.Errorf("even cycle λmax = %v, want 2", evenMax)
	}
	_, oddMax, err := Extremes(cycle(t, 13), rng, 0)
	if err != nil {
		t.Fatal(err)
	}
	if oddMax >= 2-1e-6 {
		t.Errorf("odd cycle λmax = %v, want < 2", oddMax)
	}
	_, triMax, err := Extremes(complete(t, 3), rng, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(triMax-1.5) > 1e-8 {
		t.Errorf("triangle λmax = %v, want 1.5", triMax)
	}
}
