package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRoundTrip(t *testing.T) {
	tr := New("req-1", "request", "method", "POST", "path", "/v1/pipelines")
	root := tr.Root()
	job := root.Child("job", "kind", "pipeline")
	step := job.Child("step", "id", "gen", "op", "generate")
	phase := step.Child("construct")
	rep := phase.Child("replica", "i", "0")
	rep.Event("rewire", map[string]float64{"sweep": 1, "acceptance_rate": 0.5, "attempts": 100, "accepted": 50})
	rep.Event("rewire", map[string]float64{"sweep": 2, "acceptance_rate": 0.25, "attempts": 200, "accepted": 75})
	rep.End()
	phase.End()
	step.SetAttr("status", "ok")
	step.End()
	job.End()
	root.End()

	data := tr.MarshalJSONL()
	d, err := DecodeBytes(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	if d.ID != "req-1" {
		t.Fatalf("trace id = %q, want req-1", d.ID)
	}
	if len(d.Spans) != 5 {
		t.Fatalf("spans = %d, want 5", len(d.Spans))
	}
	if len(d.Events) != 2 {
		t.Fatalf("events = %d, want 2", len(d.Events))
	}
	if d.Skipped != 0 {
		t.Fatalf("skipped = %d, want 0", d.Skipped)
	}
	root2, ok := d.Root()
	if !ok || root2.Name != "request" || root2.Attrs["method"] != "POST" {
		t.Fatalf("root = %+v", root2)
	}
	if got := d.SpanEvents(rep.ID()); len(got) != 2 || got[1].Fields["sweep"] != 2 {
		t.Fatalf("replica events = %+v", got)
	}
	// Encoding is stable: re-encoding the same trace is byte-identical.
	if again := tr.MarshalJSONL(); !bytes.Equal(data, again) {
		t.Fatalf("re-encode differs:\n%s\nvs\n%s", data, again)
	}
	// Every record round-trips through one JSON pass unchanged.
	for _, line := range bytes.Split(bytes.TrimSpace(data), []byte("\n")) {
		var r Record
		if err := json.Unmarshal(line, &r); err != nil {
			t.Fatalf("line %s: %v", line, err)
		}
		out, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		if string(out) != string(line) {
			t.Fatalf("record not stable: %s vs %s", line, out)
		}
	}
}

func TestNilSpanIsFree(t *testing.T) {
	var s *Span
	// Every method must be callable on nil without panic.
	if c := s.Child("x"); c != nil {
		t.Fatalf("nil.Child = %v, want nil", c)
	}
	s.SetAttr("k", "v")
	s.Event("e", nil)
	s.End()
	if s.Trace() != nil || s.ID() != 0 {
		t.Fatal("nil span leaked state")
	}
	if got := FromContext(context.Background()); got != nil {
		t.Fatalf("FromContext(empty) = %v", got)
	}
	if got := FromContext(With(context.Background(), nil)); got != nil {
		t.Fatalf("FromContext(with nil) = %v", got)
	}
}

func TestBoundedBuffers(t *testing.T) {
	tr := New("t", "root")
	tr.SetLimits(4, 3)
	root := tr.Root()
	var kept []*Span
	for i := 0; i < 10; i++ {
		if c := root.Child("c" + strconv.Itoa(i)); c != nil {
			kept = append(kept, c)
		}
	}
	if len(kept) != 3 { // root occupies one of the 4 slots
		t.Fatalf("kept %d children, want 3", len(kept))
	}
	for i := 0; i < 10; i++ {
		root.Event("e", map[string]float64{"i": float64(i)})
	}
	d, err := DecodeBytes(tr.MarshalJSONL())
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Spans) != 4 || len(d.Events) != 3 {
		t.Fatalf("spans=%d events=%d, want 4/3", len(d.Spans), len(d.Events))
	}
	if d.DroppedSpans != 7 || d.DroppedEvents != 7 {
		t.Fatalf("dropped spans=%d events=%d, want 7/7", d.DroppedSpans, d.DroppedEvents)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("validate after drops: %v", err)
	}
}

func TestEndIdempotent(t *testing.T) {
	tr := New("t", "root")
	root := tr.Root()
	root.End()
	first := tr.Records()[1].DurUS
	time.Sleep(2 * time.Millisecond)
	root.End()
	if got := tr.Records()[1].DurUS; got != first {
		t.Fatalf("second End changed duration: %d -> %d", first, got)
	}
}

func TestConcurrentRecording(t *testing.T) {
	tr := New("t", "root")
	root := tr.Root()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := root.Child("worker", "i", strconv.Itoa(i))
			for j := 0; j < 50; j++ {
				s.Event("tick", map[string]float64{"j": float64(j)})
			}
			s.End()
		}(i)
	}
	wg.Wait()
	root.End()
	d, err := DecodeBytes(tr.MarshalJSONL())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	if len(d.Spans) != 9 || len(d.Events) != 400 {
		t.Fatalf("spans=%d events=%d, want 9/400", len(d.Spans), len(d.Events))
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"no spans":      `{"kind":"trace","trace":"t","start_us":0}`,
		"orphan parent": `{"kind":"span","id":1,"start_us":0}` + "\n" + `{"kind":"span","id":2,"parent":9,"start_us":0}`,
		"two roots":     `{"kind":"span","id":1,"start_us":0}` + "\n" + `{"kind":"span","id":2,"start_us":0}`,
		"dup id":        `{"kind":"span","id":1,"start_us":0}` + "\n" + `{"kind":"span","id":1,"start_us":0}`,
		"event orphan":  `{"kind":"span","id":1,"start_us":0}` + "\n" + `{"kind":"event","id":5,"name":"e","start_us":0}`,
	}
	for name, in := range cases {
		d, err := Decode(strings.NewReader(in))
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if err := d.Validate(); err == nil {
			t.Fatalf("%s: Validate accepted malformed trace", name)
		}
	}
}

func TestDecodeTolerant(t *testing.T) {
	in := `{"kind":"span","id":1,"start_us":0,"dur_us":5}
not json at all
{"kind":"mystery"}
{"kind":"event","id":1,"name":"e","start_us":1}`
	d, err := Decode(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Spans) != 1 || len(d.Events) != 1 || d.Skipped != 2 {
		t.Fatalf("spans=%d events=%d skipped=%d", len(d.Spans), len(d.Events), d.Skipped)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
}

func TestTimelineRenders(t *testing.T) {
	tr := New("req-9", "request")
	job := tr.Root().Child("job", "kind", "pipeline")
	rep := job.Child("replica", "i", "0")
	rep.Event("rewire", map[string]float64{"sweep": 1, "acceptance_rate": 0.4, "attempts": 10, "accepted": 4})
	rep.End()
	job.End()
	tr.Root().End()
	d, err := DecodeBytes(tr.MarshalJSONL())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := d.WriteTimeline(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"trace req-9", "request", "job", "replica", "convergence", "sweep"} {
		if !strings.Contains(out, want) {
			t.Fatalf("timeline missing %q:\n%s", want, out)
		}
	}
}

func FuzzTraceDecode(f *testing.F) {
	tr := New("seed", "root")
	c := tr.Root().Child("child")
	c.Event("rewire", map[string]float64{"sweep": 1})
	c.End()
	tr.Root().End()
	f.Add(tr.MarshalJSONL())
	f.Add([]byte(`{"kind":"span","id":1,"start_us":0}`))
	f.Add([]byte("\x00\xff garbage\n{\"kind\":"))
	f.Add([]byte(`{"kind":"trace","wall":"not-a-time","dropped_events":-3}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := DecodeBytes(data)
		if err != nil {
			t.Fatalf("DecodeBytes on in-memory input: %v", err)
		}
		// Validate and render must never panic either, whatever Decode
		// produced from the arbitrary input.
		if err := d.Validate(); err == nil {
			var sb strings.Builder
			_ = d.WriteTimeline(&sb)
		}
	})
}
