// Package trace is a zero-dependency span/event subsystem for causal,
// per-request timing: a Trace is a bounded in-memory tree of spans
// (explicit parent/child ids, monotonic timings) plus a bounded buffer
// of point-in-time events, encoded as stable JSONL for persistence
// alongside the job journal and for the /v1/jobs/{id}/trace endpoint.
//
// The nil receiver is the disabled tracer: every method on a nil *Span
// is a no-op that reads no clock and takes no lock, extending the
// nil-observer contract of internal/pipeline to the whole span tree —
// pkg/dk local runs pass nil spans and pay nothing.
//
// Timings are monotonic: the trace captures one wall-clock anchor at
// creation and every span offset/duration derives from Go's monotonic
// reading relative to that instant, so spans never go backwards under
// wall-clock adjustment. Offsets are microseconds from the anchor.
package trace

import (
	"context"
	"sort"
	"sync"
	"time"
)

// Default buffer bounds. Spans are bounded by request shape (steps ×
// phases × replicas); events are bounded by convergence-sample volume.
// Both caps exist so a pathological job cannot grow a trace without
// limit — overflow is counted, not silently lost.
const (
	DefaultMaxSpans  = 4096
	DefaultMaxEvents = 8192
)

// Record is one line of an encoded trace. Kind discriminates:
//
//	"trace" — the header: trace id, wall-clock anchor, drop counters
//	"span"  — one span: id, parent (0 = root), name, offsets, attrs
//	"event" — one point event owned by span ID, with numeric fields
//
// Offsets are microseconds from the trace's wall-clock anchor. A span
// with Open true was never ended (the trace was encoded mid-flight).
type Record struct {
	Kind string `json:"kind"`
	// Header fields.
	Trace         string `json:"trace,omitempty"`
	Wall          string `json:"wall,omitempty"` // RFC3339Nano anchor
	DroppedSpans  int    `json:"dropped_spans,omitempty"`
	DroppedEvents int    `json:"dropped_events,omitempty"`
	// Span/event fields. For events, ID is the owning span's id.
	ID      int                `json:"id,omitempty"`
	Parent  int                `json:"parent,omitempty"`
	Name    string             `json:"name,omitempty"`
	StartUS int64              `json:"start_us"`
	DurUS   int64              `json:"dur_us,omitempty"`
	Open    bool               `json:"open,omitempty"`
	Attrs   map[string]string  `json:"attrs,omitempty"`
	Fields  map[string]float64 `json:"fields,omitempty"`
}

// Trace is one bounded span tree. All methods are safe for concurrent
// use: replica fan-outs record child spans and events from multiple
// goroutines at once.
type Trace struct {
	mu            sync.Mutex
	id            string
	wall          time.Time // wall-clock anchor (also carries monotonic)
	nextID        int
	spans         []*Span
	events        []Record
	maxSpans      int
	maxEvents     int
	droppedSpans  int
	droppedEvents int
	root          *Span
}

// Span is one timed node of a trace tree. The nil *Span is the
// disabled tracer: all methods no-op without reading the clock.
type Span struct {
	t      *Trace
	id     int
	parent int
	name   string
	start  time.Duration
	dur    time.Duration
	ended  bool
	attrs  map[string]string
}

// New starts a trace with a single open root span. id is the trace id
// (the service uses the request's X-Request-Id); rootName names the
// root span; attrs are alternating key/value pairs.
func New(id, rootName string, attrs ...string) *Trace {
	t := &Trace{
		id:        id,
		wall:      time.Now(),
		maxSpans:  DefaultMaxSpans,
		maxEvents: DefaultMaxEvents,
	}
	t.root = t.newSpan(0, rootName, attrs)
	return t
}

// SetLimits overrides the span/event buffer bounds (values <= 0 keep
// the current bound). Call before recording.
func (t *Trace) SetLimits(maxSpans, maxEvents int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if maxSpans > 0 {
		t.maxSpans = maxSpans
	}
	if maxEvents > 0 {
		t.maxEvents = maxEvents
	}
}

// ID returns the trace id.
func (t *Trace) ID() string { return t.id }

// Root returns the root span.
func (t *Trace) Root() *Span { return t.root }

// newSpan allocates a span under parent id. Caller must not hold t.mu.
func (t *Trace) newSpan(parent int, name string, attrs []string) *Span {
	off := time.Since(t.wall)
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) >= t.maxSpans {
		t.droppedSpans++
		return nil
	}
	t.nextID++
	s := &Span{t: t, id: t.nextID, parent: parent, name: name, start: off, attrs: attrMap(attrs)}
	t.spans = append(t.spans, s)
	return s
}

func attrMap(kv []string) map[string]string {
	if len(kv) < 2 {
		return nil
	}
	m := make(map[string]string, len(kv)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		m[kv[i]] = kv[i+1]
	}
	return m
}

// Trace returns the owning trace (nil on a nil span).
func (s *Span) Trace() *Trace {
	if s == nil {
		return nil
	}
	return s.t
}

// ID returns the span id (0 on a nil span).
func (s *Span) ID() int {
	if s == nil {
		return 0
	}
	return s.id
}

// Child opens a child span. On a nil receiver it returns nil, so a
// disabled tracer propagates through call trees for free.
func (s *Span) Child(name string, attrs ...string) *Span {
	if s == nil {
		return nil
	}
	return s.t.newSpan(s.id, name, attrs)
}

// SetAttr sets one attribute on the span.
func (s *Span) SetAttr(k, v string) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	if s.attrs == nil {
		s.attrs = make(map[string]string, 1)
	}
	s.attrs[k] = v
}

// Event records a point-in-time event owned by the span, with numeric
// fields (e.g. a rewiring convergence sample). Events beyond the
// trace's buffer bound are dropped and counted, never reallocated.
func (s *Span) Event(name string, fields map[string]float64) {
	if s == nil {
		return
	}
	off := time.Since(s.t.wall)
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	if len(s.t.events) >= s.t.maxEvents {
		s.t.droppedEvents++
		return
	}
	s.t.events = append(s.t.events, Record{
		Kind:    "event",
		ID:      s.id,
		Name:    name,
		StartUS: off.Microseconds(),
		Fields:  fields,
	})
}

// End closes the span. Idempotent: only the first End sets the
// duration, so shared-ownership handoffs (middleware vs. handler both
// ending the root) are safe.
func (s *Span) End() {
	if s == nil {
		return
	}
	off := time.Since(s.t.wall)
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	if s.ended {
		return
	}
	s.ended = true
	s.dur = off - s.start
}

// Records snapshots the trace as its stable encoded form: one header
// record, then spans in id order, then events in record order. The
// encoding is deterministic for a given recorded history (map-valued
// attrs/fields marshal with sorted keys under encoding/json).
func (t *Trace) Records() []Record {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Record, 0, 1+len(t.spans)+len(t.events))
	out = append(out, Record{
		Kind:          "trace",
		Trace:         t.id,
		Wall:          t.wall.Format(time.RFC3339Nano),
		DroppedSpans:  t.droppedSpans,
		DroppedEvents: t.droppedEvents,
	})
	spans := make([]*Span, len(t.spans))
	copy(spans, t.spans)
	sort.Slice(spans, func(i, j int) bool { return spans[i].id < spans[j].id })
	for _, s := range spans {
		r := Record{
			Kind:    "span",
			ID:      s.id,
			Parent:  s.parent,
			Name:    s.name,
			StartUS: s.start.Microseconds(),
		}
		if s.ended {
			r.DurUS = s.dur.Microseconds()
		} else {
			r.Open = true
		}
		if len(s.attrs) > 0 {
			r.Attrs = make(map[string]string, len(s.attrs))
			for k, v := range s.attrs {
				r.Attrs[k] = v
			}
		}
		out = append(out, r)
	}
	out = append(out, t.events...)
	return out
}

// ctxKey keys the active span in a context.Context.
type ctxKey struct{}

// With returns ctx carrying s as the active span. A nil span is
// carried too — FromContext then returns nil, the disabled tracer.
func With(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the active span, or nil when none was attached.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}
