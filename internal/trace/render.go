package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// WriteTimeline renders the trace as an indented text timeline: one
// line per span with its start offset, duration, self-time (duration
// minus the summed durations of its children) and a bar scaled to the
// root span's duration, followed by a convergence section plotting the
// acceptance-rate trajectory of every span that recorded "rewire"
// events. Call Validate first; the renderer assumes a single root and
// resolvable parents.
func (d *Data) WriteTimeline(w io.Writer) error {
	root, ok := d.Root()
	if !ok {
		return fmt.Errorf("trace: no root span")
	}
	fmt.Fprintf(w, "trace %s  spans=%d events=%d", d.ID, len(d.Spans), len(d.Events))
	if d.DroppedSpans > 0 || d.DroppedEvents > 0 {
		fmt.Fprintf(w, "  dropped(spans=%d events=%d)", d.DroppedSpans, d.DroppedEvents)
	}
	fmt.Fprintln(w)

	total := root.DurUS
	if total <= 0 {
		total = 1
	}
	var walk func(s Record, depth int)
	walk = func(s Record, depth int) {
		children := d.Children(s.ID)
		self := s.DurUS
		for _, c := range children {
			self -= c.DurUS
		}
		if self < 0 {
			self = 0 // overlapping children (parallel replicas)
		}
		name := s.Name
		if len(s.Attrs) > 0 {
			keys := make([]string, 0, len(s.Attrs))
			for k := range s.Attrs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			parts := make([]string, 0, len(keys))
			for _, k := range keys {
				parts = append(parts, k+"="+s.Attrs[k])
			}
			name += " {" + strings.Join(parts, " ") + "}"
		}
		dur := "open"
		if !s.Open {
			dur = fmtUS(s.DurUS)
		}
		fmt.Fprintf(w, "%s%-*s %10s  self %9s  +%s  %s\n",
			strings.Repeat("  ", depth), 46-2*depth, clip(name, 46-2*depth),
			dur, fmtUS(self), fmtUS(s.StartUS), bar(s.DurUS, total, 20))
		for _, c := range children {
			walk(c, depth+1)
		}
	}
	walk(root, 0)
	d.writeConvergence(w)
	return nil
}

// writeConvergence plots, per span owning "rewire" events, the window
// acceptance rate of each convergence sample — the practical evidence
// that an MCMC rewiring run mixed (a decaying-but-nonzero trajectory)
// or stalled (collapse to zero).
func (d *Data) writeConvergence(w io.Writer) {
	type curve struct {
		span    Record
		samples []Record
	}
	var curves []curve
	for _, s := range d.Spans {
		var samples []Record
		for _, e := range d.SpanEvents(s.ID) {
			if e.Name == "rewire" {
				samples = append(samples, e)
			}
		}
		if len(samples) > 0 {
			curves = append(curves, curve{span: s, samples: samples})
		}
	}
	if len(curves) == 0 {
		return
	}
	fmt.Fprintf(w, "\nconvergence (window acceptance rate per sweep)\n")
	for _, c := range curves {
		last := c.samples[len(c.samples)-1]
		fmt.Fprintf(w, "  span %d %s {%s}: %d samples, %d/%d accepted\n",
			c.span.ID, c.span.Name, attrLine(c.span.Attrs), len(c.samples),
			int(last.Fields["accepted"]), int(last.Fields["attempts"]))
		for _, e := range c.samples {
			rate := e.Fields["acceptance_rate"]
			line := fmt.Sprintf("    sweep %3.0f  rate %.3f %s", e.Fields["sweep"], rate, bar(int64(rate*1000), 1000, 24))
			if obj, ok := e.Fields["objective"]; ok {
				line += fmt.Sprintf("  obj %+.4g", obj)
			}
			fmt.Fprintln(w, line)
		}
	}
}

func attrLine(attrs map[string]string) string {
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, k+"="+attrs[k])
	}
	return strings.Join(parts, " ")
}

func clip(s string, n int) string {
	if n < 4 {
		n = 4
	}
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

func fmtUS(us int64) string {
	return time.Duration(us * int64(time.Microsecond)).Round(time.Microsecond).String()
}

// bar renders v/total as a fixed-width block bar.
func bar(v, total int64, width int) string {
	if total <= 0 || v < 0 {
		return ""
	}
	n := int(v * int64(width) / total)
	if n > width {
		n = width
	}
	if n == 0 && v > 0 {
		n = 1
	}
	return strings.Repeat("█", n) + strings.Repeat("·", width-n)
}
