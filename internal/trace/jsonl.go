package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// WriteJSONL encodes the trace as JSONL: one Record per line, header
// first, spans in id order, events in record order. The byte output is
// stable for a given recorded history.
func (t *Trace) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, r := range t.Records() {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return nil
}

// MarshalJSONL returns the JSONL encoding as bytes.
func (t *Trace) MarshalJSONL() []byte {
	var buf bytes.Buffer
	_ = t.WriteJSONL(&buf) // bytes.Buffer writes cannot fail
	return buf.Bytes()
}

// Data is a decoded trace: the header fields plus the span and event
// records, ready for validation and rendering.
type Data struct {
	ID            string
	Wall          time.Time
	DroppedSpans  int
	DroppedEvents int
	Spans         []Record
	Events        []Record
	// Skipped counts lines that were not valid records (torn tails,
	// foreign content). The decoder is tolerant by design: it never
	// fails on malformed input, mirroring the job-journal replay.
	Skipped int
}

// maxLine bounds one JSONL line; far above anything the encoder
// produces, it exists so Decode cannot be made to buffer arbitrarily.
const maxLine = 16 << 20

// Decode reads a JSONL trace. It is tolerant: unparseable lines are
// counted in Skipped rather than failing, and arbitrary input never
// panics (FuzzTraceDecode holds the reader to that). The only error is
// a failed read from r.
func Decode(r io.Reader) (*Data, error) {
	d := &Data{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), maxLine)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			d.Skipped++
			continue
		}
		switch rec.Kind {
		case "trace":
			d.ID = rec.Trace
			d.DroppedSpans = rec.DroppedSpans
			d.DroppedEvents = rec.DroppedEvents
			if w, err := time.Parse(time.RFC3339Nano, rec.Wall); err == nil {
				d.Wall = w
			}
		case "span":
			d.Spans = append(d.Spans, rec)
		case "event":
			d.Events = append(d.Events, rec)
		default:
			d.Skipped++
		}
	}
	if err := sc.Err(); err != nil {
		if err == bufio.ErrTooLong {
			d.Skipped++
			return d, nil
		}
		return nil, err
	}
	return d, nil
}

// DecodeBytes decodes an in-memory JSONL trace.
func DecodeBytes(b []byte) (*Data, error) {
	return Decode(bytes.NewReader(b))
}

// Validate checks the span tree is well-formed: at least one span,
// exactly one root (parent 0), unique positive span ids, every parent
// id resolving to a recorded span (zero orphans), non-negative
// offsets/durations, and every event owned by a recorded span. It does
// not require children to nest inside their parent's interval — a job
// span legitimately outlives the request span that submitted it.
func (d *Data) Validate() error {
	if len(d.Spans) == 0 {
		return fmt.Errorf("trace: no spans")
	}
	byID := make(map[int]Record, len(d.Spans))
	roots := 0
	for _, s := range d.Spans {
		if s.ID <= 0 {
			return fmt.Errorf("trace: span %q has non-positive id %d", s.Name, s.ID)
		}
		if _, dup := byID[s.ID]; dup {
			return fmt.Errorf("trace: duplicate span id %d", s.ID)
		}
		byID[s.ID] = s
		if s.Parent == 0 {
			roots++
		}
		if s.StartUS < 0 || s.DurUS < 0 {
			return fmt.Errorf("trace: span %d (%s) has negative timing", s.ID, s.Name)
		}
	}
	if roots != 1 {
		return fmt.Errorf("trace: %d root spans, want exactly 1", roots)
	}
	for _, s := range d.Spans {
		if s.Parent == 0 {
			continue
		}
		if _, ok := byID[s.Parent]; !ok {
			return fmt.Errorf("trace: span %d (%s) has orphan parent %d", s.ID, s.Name, s.Parent)
		}
	}
	for _, e := range d.Events {
		if _, ok := byID[e.ID]; !ok {
			return fmt.Errorf("trace: event %q owned by unknown span %d", e.Name, e.ID)
		}
	}
	return nil
}

// Root returns the root span record. Call after Validate.
func (d *Data) Root() (Record, bool) {
	for _, s := range d.Spans {
		if s.Parent == 0 {
			return s, true
		}
	}
	return Record{}, false
}

// Children returns the child spans of span id, in id order.
func (d *Data) Children(id int) []Record {
	var out []Record
	for _, s := range d.Spans {
		if s.Parent == id {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// SpanEvents returns the events owned by span id, in record order.
func (d *Data) SpanEvents(id int) []Record {
	var out []Record
	for _, e := range d.Events {
		if e.ID == id {
			out = append(out, e)
		}
	}
	return out
}
