// Quickstart: extract a dK-distribution from a graph, generate random
// graphs matching it at increasing depths d, and watch the metric suite
// converge to the original — the core workflow of the paper in ~60 lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/graph"
	"repro/internal/metrics"
)

func main() {
	// A small AS-like topology: power-law degrees, disassortative,
	// clustered.
	g, err := datasets.Skitter(datasets.SkitterConfig{N: 600, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	st := g.Static()
	orig, err := metrics.Summarize(st, metrics.SummaryOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("original:   n=%d m=%d k̄=%.2f r=%+.3f C̄=%.3f d̄=%.2f\n",
		orig.N, orig.M, orig.AvgDegree, orig.R, orig.CBar, orig.DBar)

	// dK-randomize at each depth: same dK-distribution, otherwise
	// maximally random. Watch r appear at d≥2 and clustering at d=3.
	for d := 0; d <= 3; d++ {
		rng := rand.New(rand.NewSource(int64(d) + 1))
		random, err := core.Randomize(g, d, core.Options{Rng: rng})
		if err != nil {
			log.Fatal(err)
		}
		gcc, _ := graph.GiantComponent(random)
		sum, err := metrics.Summarize(gcc.Static(), metrics.SummaryOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%dK-random:  n=%d m=%d k̄=%.2f r=%+.3f C̄=%.3f d̄=%.2f\n",
			d, sum.N, sum.M, sum.AvgDegree, sum.R, sum.CBar, sum.DBar)
	}

	// Or: extract the profile and build a fresh graph from the
	// distribution alone (no original needed), the 2K pseudograph way.
	profile, err := core.Extract(g, 2)
	if err != nil {
		log.Fatal(err)
	}
	fresh, err := core.Generate(profile, 2, core.MethodPseudograph, core.Options{
		Rng: rand.New(rand.NewSource(99)),
	})
	if err != nil {
		log.Fatal(err)
	}
	q, err := core.Extract(fresh, 2)
	if err != nil {
		log.Fatal(err)
	}
	d2, err := core.Distance(profile, q, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fresh 2K pseudograph: n=%d m=%d, D2 distance to target JDD = %.0f\n",
		fresh.N(), fresh.M(), d2)
}
