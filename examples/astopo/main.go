// astopo: the AS-topology workflow the paper's introduction motivates —
// take a measured AS graph (here the synthetic skitter-like stand-in),
// extract its joint degree distribution, rescale it to a different
// network size (the paper's §6 future-work feature), and generate
// ensembles of "realistic" topologies at the new size for protocol
// simulation.
//
//	go run ./examples/astopo
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/dk"
	"repro/internal/graph"
	"repro/internal/metrics"
)

func main() {
	// The "measured" AS topology.
	measured, err := datasets.Skitter(datasets.SkitterConfig{N: 1000, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	profile, err := core.Extract(measured, 2)
	if err != nil {
		log.Fatal(err)
	}
	origSum, err := metrics.Summarize(measured.Static(), metrics.SummaryOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("measured AS graph: n=%d m=%d k̄=%.2f r=%+.3f C̄=%.3f\n",
		origSum.N, origSum.M, origSum.AvgDegree, origSum.R, origSum.CBar)

	// Rescale the 2K-distribution to half and double the network size.
	for _, targetN := range []int{500, 2000} {
		rescaled, err := dk.Rescale2K(profile.Joint, targetN)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nrescaled JDD to ~%d nodes (%d edge classes, %d edges)\n",
			targetN, len(rescaled.Count), rescaled.M)

		// Generate a small ensemble at the new size.
		for seed := int64(0); seed < 3; seed++ {
			rng := rand.New(rand.NewSource(100 + seed))
			res, err := generateFromJDD(rescaled, rng)
			if err != nil {
				log.Fatal(err)
			}
			gcc, _ := graph.GiantComponent(res)
			sum, err := metrics.Summarize(gcc.Static(), metrics.SummaryOptions{})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  ensemble[%d]: n=%d m=%d k̄=%.2f r=%+.3f C̄=%.3f d̄=%.2f\n",
				seed, sum.N, sum.M, sum.AvgDegree, sum.R, sum.CBar, sum.DBar)
		}
	}
}

// generateFromJDD builds a 2K graph from a (rescaled) JDD alone, using
// the profile-based API.
func generateFromJDD(jdd *dk.JDD, rng *rand.Rand) (*graph.CSR, error) {
	dd, err := jdd.DegreeDist()
	if err != nil {
		return nil, err
	}
	p := &dk.Profile{
		D:         2,
		N:         dd.N,
		M:         jdd.M,
		AvgDegree: dd.AvgDegree(),
		Degrees:   dd,
		Joint:     jdd,
	}
	return core.Generate(p, 2, core.MethodPseudograph, core.Options{Rng: rng})
}
