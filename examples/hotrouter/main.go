// hotrouter: the paper's hard case. Router-level (HOT) topologies defeat
// degree-distribution-only generators: 1K-random graphs pull the
// high-degree nodes into the core, while real HOT networks keep them at
// the periphery. This example reproduces that failure and shows the dK
// ladder fixing it: compare where hubs sit and how distances distribute
// as d grows.
//
//	go run ./examples/hotrouter
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/graph"
	"repro/internal/metrics"
)

func main() {
	hot, roles, err := datasets.HOT(datasets.PaperScaleHOT(3))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("HOT-like router topology: n=%d m=%d (core=%d gateways=%d access=%d hosts=%d)\n\n",
		hot.N(), hot.M(), len(roles.Core), len(roles.Gateway), len(roles.Access), len(roles.Host))

	report("original", hot)
	for d := 0; d <= 3; d++ {
		rng := rand.New(rand.NewSource(int64(d) + 10))
		random, err := core.Randomize(hot, d, core.Options{Rng: rng})
		if err != nil {
			log.Fatal(err)
		}
		report(fmt.Sprintf("%dK-random", d), random)
	}
	fmt.Println("\nReading the table: in the original, hubs are access routers at the")
	fmt.Println("periphery (high hub distance ratio). 1K-random drags them into the")
	fmt.Println("core (low ratio, short distances). 2K partially restores the")
	fmt.Println("periphery; 3K locks the structure back in.")
}

func report(name string, g *graph.CSR) {
	gcc, _ := graph.GiantComponent(g)
	s := gcc.Static()
	sum, err := metrics.Summarize(s, metrics.SummaryOptions{SkipS2: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-11s n=%4d k̄=%.2f r=%+.3f d̄=%5.2f σd=%.2f  hub-ratio=%.2f\n",
		name, sum.N, sum.AvgDegree, sum.R, sum.DBar, sum.SigmaD, hubRatio(s))
}

// hubRatio is the mean BFS distance from the five highest-degree nodes to
// everyone else, divided by the overall mean distance: < 1 means hubs in
// the core, ≈ 1 or more means hubs at the periphery.
func hubRatio(s *graph.Static) float64 {
	n := s.N()
	deg := make([]int, n)
	for i := range deg {
		deg[i] = i
	}
	sort.Slice(deg, func(a, b int) bool { return s.Degree(deg[a]) > s.Degree(deg[b]) })
	top := 5
	if top > n {
		top = n
	}
	dist := make([]int32, n)
	queue := make([]int32, 0, n)
	var sum, cnt float64
	for _, h := range deg[:top] {
		graph.BFS(s, h, dist, queue)
		for _, d := range dist {
			if d > 0 {
				sum += float64(d)
				cnt++
			}
		}
	}
	overall := metrics.Distances(s).Mean()
	if overall == 0 || cnt == 0 {
		return 0
	}
	return (sum / cnt) / overall
}
