// visualize: regenerate the raw material of the paper's Figure 3 — DOT
// renderings of the HOT topology and its 0K..3K-random counterparts with
// the high-degree nodes highlighted, so the hub migration from core
// (1K) back to periphery (3K) is visible in any Graphviz viewer:
//
//	go run ./examples/visualize -outdir /tmp/fig3
//	neato -Tsvg /tmp/fig3/hot-2K.dot > hot-2K.svg
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/graph"
)

func main() {
	outdir := flag.String("outdir", ".", "directory for the DOT files")
	hubThreshold := flag.Int("hub-threshold", 15, "highlight nodes with degree >= threshold")
	flag.Parse()

	if err := os.MkdirAll(*outdir, 0o755); err != nil {
		log.Fatal(err)
	}
	// A smaller HOT instance keeps the drawings legible.
	hot, _, err := datasets.HOT(datasets.HOTConfig{
		Hosts: 220, AccessRouters: 24, Gateways: 16, CoreSize: 8, ExtraLinks: 12, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := write(*outdir, "hot-original.dot", "HOT", hot, *hubThreshold); err != nil {
		log.Fatal(err)
	}
	for d := 0; d <= 3; d++ {
		rng := rand.New(rand.NewSource(int64(d) + 40))
		random, err := core.Randomize(hot, d, core.Options{Rng: rng})
		if err != nil {
			log.Fatal(err)
		}
		name := fmt.Sprintf("hot-%dK.dot", d)
		if err := write(*outdir, name, fmt.Sprintf("%dK", d), random, *hubThreshold); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("wrote 5 DOT files to %s — render with: neato -Tsvg <file>\n", *outdir)
}

func write(dir, name, title string, g *graph.CSR, hubThreshold int) error {
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	return graph.WriteDOT(f, g, title, hubThreshold)
}
