// exploration: dK-space exploration (Section 4.3 of the paper). All
// 2K-graphs share a joint degree distribution, but metrics the JDD does
// not pin down — clustering, second-order likelihood — can still vary.
// This example measures how much slack d = 2 leaves by steering those
// metrics to their extremes with 2K-preserving rewiring, answering the
// practitioner's question "is d = 2 constraining enough for my study?".
//
//	go run ./examples/exploration
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/datasets"
	"repro/internal/generate"
	"repro/internal/graph"
	"repro/internal/metrics"
)

func main() {
	g, err := datasets.Skitter(datasets.SkitterConfig{N: 800, Seed: 21})
	if err != nil {
		log.Fatal(err)
	}
	base := summarize(g)
	fmt.Printf("reference 2K-graph: C̄=%.3f S2=%.4g d̄=%.2f\n\n", base.CBar, base.S2, base.DBar)

	budget := 40 * g.M()
	type result struct {
		name string
		sum  metrics.Summary
	}
	var results []result
	for _, v := range []struct {
		name   string
		metric generate.ExploreMetric
		max    bool
	}{
		{"min C̄", generate.MetricClustering, false},
		{"max C̄", generate.MetricClustering, true},
		{"min S2", generate.MetricS2, false},
		{"max S2", generate.MetricS2, true},
	} {
		res, err := generate.Explore(g, v.metric, generate.ExploreOptions{
			Rng:         rngFor(v.name),
			Maximize:    v.max,
			MaxAttempts: budget,
			Patience:    budget / 2,
		})
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, result{v.name, summarize(res.FinalGraph)})
	}

	fmt.Printf("%-8s %8s %12s %8s %8s\n", "variant", "C̄", "S2", "d̄", "r")
	for _, r := range results {
		fmt.Printf("%-8s %8.3f %12.4g %8.2f %+8.3f\n", r.name, r.sum.CBar, r.sum.S2, r.sum.DBar, r.sum.R)
	}
	fmt.Printf("%-8s %8.3f %12.4g %8.2f %+8.3f\n", "original", base.CBar, base.S2, base.DBar, base.R)

	fmt.Println("\nThe spread between min and max rows is the structural diversity")
	fmt.Println("d = 2 fails to constrain; if it is too wide for your metric of")
	fmt.Println("interest, move to d = 3 (the paper's Table 7 methodology).")
}

func summarize(g *graph.CSR) metrics.Summary {
	gcc, _ := graph.GiantComponent(g)
	sum, err := metrics.Summarize(gcc.Static(), metrics.SummaryOptions{})
	if err != nil {
		log.Fatal(err)
	}
	return sum
}

func rngFor(name string) *rand.Rand {
	seed := int64(0)
	for _, c := range name {
		seed = seed*31 + int64(c)
	}
	return rand.New(rand.NewSource(seed))
}
