// robustness: the use-case from the paper's introduction — "robustness to
// random network failures and targeted attacks, the speed of worms
// spreading" — evaluated on dK-random ensembles. If dK-random graphs at
// some depth d behave like the measured topology under these protocols,
// then d is sufficient for protocol studies; this example shows d = 2..3
// doing exactly that while 0K/1K ensembles mislead.
//
//	go run ./examples/robustness
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/graph"
	"repro/internal/netsim"
)

func main() {
	orig, err := datasets.Skitter(datasets.SkitterConfig{N: 900, Seed: 31})
	if err != nil {
		log.Fatal(err)
	}
	graphs := []struct {
		name string
		g    *graph.Graph
	}{{"original", orig}}
	for d := 0; d <= 3; d++ {
		rng := rand.New(rand.NewSource(int64(d) + 50))
		random, err := core.Randomize(orig, d, core.Options{Rng: rng})
		if err != nil {
			log.Fatal(err)
		}
		gcc, _ := graph.GiantComponent(random)
		graphs = append(graphs, struct {
			name string
			g    *graph.Graph
		}{fmt.Sprintf("%dK-random", d), gcc})
	}

	fracs := []float64{0.01, 0.05, 0.10, 0.20}
	fmt.Println("GCC fraction surviving targeted (highest-degree-first) attack:")
	fmt.Printf("%-11s", "graph")
	for _, f := range fracs {
		fmt.Printf("  rm=%4.0f%%", f*100)
	}
	fmt.Println()
	for _, entry := range graphs {
		pts, err := netsim.Robustness(entry.g.Static(), fracs, true, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-11s", entry.name)
		for _, p := range pts {
			fmt.Printf("  %7.3f", p.GCCFrac)
		}
		fmt.Println()
	}

	fmt.Println("\nWorm (SI, beta=0.5) rounds to 90% coverage, and greedy-routing success:")
	fmt.Printf("%-11s  %-14s  %-14s  %s\n", "graph", "rounds to 90%", "routing succ.", "stretch")
	for _, entry := range graphs {
		s := entry.g.Static()
		rng := rand.New(rand.NewSource(7))
		worm, err := netsim.WormSpread(s, 0.5, 200, rng)
		if err != nil {
			log.Fatal(err)
		}
		route, err := netsim.GreedyDegreeRouting(s, 400, 0, rng)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-11s  %-14d  %-14.2f  %.2f\n",
			entry.name, worm.RoundsTo(0.9), route.SuccessRate, route.AvgStretch)
	}

	fmt.Println("\nIf the 2K/3K rows track the original while 0K/1K diverge, the paper's")
	fmt.Println("prescription holds: use the smallest d whose ensemble reproduces your")
	fmt.Println("protocol's behavior.")
}
