// robustness: the use-case from the paper's introduction — "robustness to
// random network failures and targeted attacks, the speed of worms
// spreading" — evaluated on dK-random ensembles, driven entirely through
// the pkg/dk scenario subsystem. For each dK depth the example builds a
// dK-random ensemble, runs the paper's three behavioral probes
// (percolation robustness, SI worm spread, degree-greedy routing) over
// the measured graph and every replica, and reads off the divergence
// summary: max |measured − ensemble mean| per scenario. If the ensemble
// at some depth d behaves like the measured topology, d is sufficient
// for protocol studies; 2K/3K do exactly that while 0K/1K mislead.
//
//	go run ./examples/robustness
package main

import (
	"context"
	"fmt"
	"log"

	"repro/pkg/dk"
	"repro/pkg/dkapi"
)

func main() {
	ctx := context.Background()
	measured, err := dk.DatasetGraph("skitter", 31, 900)
	if err != nil {
		log.Fatal(err)
	}

	scenarios := []dkapi.ScenarioSpec{
		{Kind: dkapi.ScenarioRobustness, Fracs: []float64{0.01, 0.05, 0.10, 0.20}, Targeted: true},
		{Kind: dkapi.ScenarioEpidemic, Beta: 0.5, Rounds: 32, Trials: 4},
		{Kind: dkapi.ScenarioRouting, Pairs: 400, Trials: 4},
	}

	// One session so the measured graph's profile extraction is shared
	// across the four ensembles, exactly like repeated server requests.
	session := dk.NewSession()
	var at2K *dk.SimulateOutput
	fmt.Println("Divergence (max |measured − ensemble mean|) per scenario, by dK depth:")
	fmt.Printf("%-10s  %-11s  %-11s  %-11s\n", "ensemble", "robustness", "epidemic", "routing")
	for d := 0; d <= 3; d++ {
		gen, err := session.Generate(ctx, measured, dk.GenerateOptions{
			D: dkapi.Int(d), Replicas: 6, Seed: int64(50 + d),
		})
		if err != nil {
			log.Fatal(err)
		}
		out, err := session.Simulate(ctx, measured, gen.Graphs, dk.SimulateOptions{
			Scenarios: scenarios, Seed: 7,
		})
		if err != nil {
			log.Fatal(err)
		}
		if d == 2 {
			at2K = out
		}
		fmt.Printf("%dK-random ", d)
		for _, sc := range out.Scenarios {
			fmt.Printf("  %-11.3f", *sc.Divergence)
		}
		fmt.Println()
	}

	// The comparison curve behind one of those numbers: the 2K ensemble's
	// targeted-attack band around the measured robustness curve.
	fmt.Println("\nTargeted attack, measured vs 2K-random band (GCC fraction surviving):")
	fmt.Printf("%-8s  %-9s  %s\n", "removed", "measured", "ensemble mean [min..max]")
	rob := at2K.Scenarios[0]
	for i, p := range rob.Measured {
		b := rob.Ensemble[i]
		fmt.Printf("%6.0f%%  %9.3f  %9.3f  [%.3f..%.3f]\n", p.X*100, p.Y, b.Mean, b.Min, b.Max)
	}

	fmt.Println("\nIf the 2K/3K rows track the original while 0K/1K diverge, the paper's")
	fmt.Println("prescription holds: use the smallest d whose ensemble reproduces your")
	fmt.Println("protocol's behavior.")
}
