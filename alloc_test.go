// Allocation-budget regression tests for the two paths whose per-op
// allocation profile the CSR-first refactor pins down: depth-2 profile
// extraction on the benchmark topology and the binary graph decode
// straight into CSR. Budgets are set ~2x above the measured cost on the
// reference machine — loose enough for Go-runtime drift, tight enough
// that an accidental per-edge or per-node allocation (which multiplies
// the count by orders of magnitude) fails immediately.
package repro_test

import (
	"bytes"
	"testing"

	"repro/internal/datasets"
	"repro/internal/dk"
	"repro/internal/graph"
)

// extract2KAllocBudget bounds allocations of one depth-2 extraction on
// the ~2000-node skitter-like topology. The pass allocates the profile
// struct, the distribution maps and their growth rehashes — ~30 objects
// measured — never per node or per edge.
const extract2KAllocBudget = 150

// csrDecodeAllocBudget bounds allocations of one ReadBinaryCSR decode
// of the same topology: the arena slices, the edge list, and the
// decoder's fixed scratch — ~13 objects measured, O(1) slice headers,
// not O(m) boxes.
const csrDecodeAllocBudget = 64

func benchTopology(t testing.TB) *graph.CSR {
	t.Helper()
	src, err := datasets.Skitter(datasets.SkitterConfig{N: 2000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	return src
}

func TestExtract2KAllocBudget(t *testing.T) {
	src := benchTopology(t)
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := dk.Extract(src, 2); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > extract2KAllocBudget {
		t.Fatalf("depth-2 extraction allocates %.0f objects/op, budget %d", allocs, extract2KAllocBudget)
	}
}

func TestCSRDecodeAllocBudget(t *testing.T) {
	src := benchTopology(t)
	var buf bytes.Buffer
	if err := graph.WriteBinaryCSR(&buf, src, nil); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	allocs := testing.AllocsPerRun(5, func() {
		if _, _, err := graph.ReadBinaryCSR(bytes.NewReader(data)); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > csrDecodeAllocBudget {
		t.Fatalf("CSR decode allocates %.0f objects/op, budget %d", allocs, csrDecodeAllocBudget)
	}
}
